// Package fabric implements a cycle-level simulator of the Cerebras
// wafer-scale engine's communication fabric: a 2D mesh of routers with
// per-color routing configurations, hardware multicast, bounded link
// bandwidth (one 32-bit wavelet per link direction per cycle), small input
// queues with backpressure, and a ramp latency T_R between each processor
// and its router.
//
// The simulator substitutes for the CS-2 hardware used in the paper's
// evaluation. The paper itself notes (§1.4) that PE programs "exhibit
// deterministic, state-machine like behavior which can be modeled with a
// cycle-accurate fabric simulator"; this package is that simulator, built
// from the architectural description in §2.2 of the paper.
package fabric

import "repro/internal/mesh"

// Wavelet is a single 32-bit fabric packet. Reduction payloads are float32
// values (the paper's experiments use 32-bit floats). A control wavelet
// (Ctl) carries no payload; every router that routes it advances its active
// configuration for the wavelet's color, mirroring the paper's control
// wavelets and the "last element triggers a change in routing
// configuration" mechanism of Figure 3.
type Wavelet struct {
	Val   float32
	Color mesh.Color
	Ctl   bool
}

// waveEntry is a wavelet in flight together with the first cycle at which
// it may be acted upon (used to model the one-cycle link traversal and the
// T_R ramp latency).
type waveEntry struct {
	w       Wavelet
	readyAt int64
}

// waveQueue is a small ring buffer of in-flight wavelets. Queues are
// bounded; a full queue exerts backpressure on the upstream router, which
// is how stalling propagates through the fabric.
type waveQueue struct {
	buf  []waveEntry
	head int
	n    int
}

func (q *waveQueue) len() int { return q.n }

func (q *waveQueue) hasSpace(capacity int) bool { return q.n < capacity }

func (q *waveQueue) push(e waveEntry, capacity int) bool {
	if q.n >= capacity {
		return false
	}
	if q.buf == nil {
		q.buf = make([]waveEntry, capacity)
	}
	q.buf[(q.head+q.n)%len(q.buf)] = e
	q.n++
	return true
}

func (q *waveQueue) peek() (waveEntry, bool) {
	if q.n == 0 {
		return waveEntry{}, false
	}
	return q.buf[q.head], true
}

func (q *waveQueue) pop() waveEntry {
	e := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return e
}
