// Package fabric implements a cycle-level simulator of the Cerebras
// wafer-scale engine's communication fabric: a 2D mesh of routers with
// per-color routing configurations, hardware multicast, bounded link
// bandwidth (one 32-bit wavelet per link direction per cycle), small input
// queues with backpressure, and a ramp latency T_R between each processor
// and its router.
//
// The simulator substitutes for the CS-2 hardware used in the paper's
// evaluation. The paper itself notes (§1.4) that PE programs "exhibit
// deterministic, state-machine like behavior which can be modeled with a
// cycle-accurate fabric simulator"; this package is that simulator, built
// from the architectural description in §2.2 of the paper.
package fabric

import "repro/internal/mesh"

// Wavelet is a single 32-bit fabric packet. Reduction payloads are float32
// values (the paper's experiments use 32-bit floats). A control wavelet
// (Ctl) carries no payload; every router that routes it advances its active
// configuration for the wavelet's color, mirroring the paper's control
// wavelets and the "last element triggers a change in routing
// configuration" mechanism of Figure 3.
type Wavelet struct {
	Val   float32
	Color mesh.Color
	Ctl   bool
}

// waveEntry is a wavelet in flight together with the first cycle at which
// it may be acted upon (used to model the one-cycle link traversal and the
// T_R ramp latency).
type waveEntry struct {
	w       Wavelet
	readyAt int64
}

// waveQueue is a bounded single-producer single-consumer ring of in-flight
// wavelets. Every fabric queue has exactly one producer (the upstream
// router for a link queue, the local processor for a ramp queue, the local
// router for an inbox) and one consumer, each performing at most one
// operation per cycle.
//
// The cursors split each side's view in two: head/tail are the true
// consumer/producer positions, headSeen/tailSeen are the positions the
// *other* side observes. The seen cursors are synchronised only at the
// cycle barrier (sync), so a push becomes visible to the consumer — and a
// pop frees space for the producer — at the next cycle, never mid-cycle.
// This makes every queue interaction independent of the order in which
// units are stepped within a cycle, which is what lets the sharded engine
// produce bit-identical results to the serial one, and lets either engine
// step units in any order without data races: the producer only writes
// tail and its buffer slot, the consumer only writes head, and the seen
// cursors are written between cycles.
// Cursors are uint32 and wrap; every derived quantity is a difference
// bounded by the queue capacity, which wraparound arithmetic preserves.
type waveQueue struct {
	buf      []waveEntry // allocated on first push, reused by Reset
	head     uint32      // consumer cursor (monotonic mod 2^32)
	tail     uint32      // producer cursor (monotonic mod 2^32)
	headSeen uint32      // head as seen by the producer (synced at cycle barrier)
	tailSeen uint32      // tail as seen by the consumer (synced at cycle barrier)
}

// visLen is the consumer-visible occupancy.
func (q *waveQueue) visLen() int { return int(q.tailSeen - q.head) }

// prodLen is the producer-visible occupancy: entries pushed but whose pop,
// if any, has not yet crossed a cycle barrier.
func (q *waveQueue) prodLen() int { return int(q.tail - q.headSeen) }

// hasSpace reports whether the producer may push another entry.
func (q *waveQueue) hasSpace(capacity int) bool { return int(q.tail-q.headSeen) < capacity }

func (q *waveQueue) push(e waveEntry, capacity int) bool {
	if int(q.tail-q.headSeen) >= capacity {
		return false
	}
	if q.buf == nil {
		// Power-of-two ring so the hot-path index is a mask, not a divide;
		// the capacity bound above keeps occupancy at the configured depth.
		n := 1
		for n < capacity {
			n <<= 1
		}
		q.buf = make([]waveEntry, n)
	}
	q.buf[int(q.tail)&(len(q.buf)-1)] = e
	q.tail++
	return true
}

func (q *waveQueue) peek() (waveEntry, bool) {
	if q.tailSeen == q.head {
		return waveEntry{}, false
	}
	return q.buf[int(q.head)&(len(q.buf)-1)], true
}

func (q *waveQueue) pop() waveEntry {
	e := q.buf[int(q.head)&(len(q.buf)-1)]
	q.head++
	return e
}

// syncProducer publishes this cycle's push to the consumer; syncConsumer
// publishes this cycle's pop to the producer. Each is called at the cycle
// barrier by the side that performed the operation.
func (q *waveQueue) syncProducer() { q.tailSeen = q.tail }
func (q *waveQueue) syncConsumer() { q.headSeen = q.head }

// reset re-arms the queue for a fresh run, keeping the allocated buffer.
func (q *waveQueue) reset() {
	q.head, q.tail, q.headSeen, q.tailSeen = 0, 0, 0, 0
}
