package fabric

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/mesh"
)

// Binary codec for Spec: the persistence hook the plan store builds on.
// A Spec is plain data — programs, routing tables, optional init vectors —
// so it serialises without reflection into a compact, versioned, fully
// deterministic byte form: PEs are emitted in row-major coordinate order
// and router configuration lists in ascending color order, so encoding the
// same program twice (or in two processes) yields identical bytes. That
// determinism is what lets the plan store address blobs by content hash.
//
// Integers use varint/uvarint encoding; floats are IEEE-754 bit patterns
// in little-endian order. The first byte is a codec version so a future
// layout change can keep decoding old specs.

// SpecCodecVersion is the current version byte of the Spec binary layout.
const SpecCodecVersion = 1

// MarshalBinary encodes the spec deterministically.
func (s *Spec) MarshalBinary() ([]byte, error) {
	e := &wireEnc{}
	e.byte(SpecCodecVersion)
	e.uvarint(uint64(s.Width))
	e.uvarint(uint64(s.Height))
	coords := make([]mesh.Coord, 0, len(s.PEs))
	for c := range s.PEs {
		coords = append(coords, c)
	}
	sort.Slice(coords, func(i, j int) bool {
		if coords[i].Y != coords[j].Y {
			return coords[i].Y < coords[j].Y
		}
		return coords[i].X < coords[j].X
	})
	e.uvarint(uint64(len(coords)))
	for _, c := range coords {
		pe := s.PEs[c]
		e.varint(int64(c.X))
		e.varint(int64(c.Y))
		e.uvarint(uint64(len(pe.Init)))
		for _, v := range pe.Init {
			e.f32(v)
		}
		e.uvarint(uint64(len(pe.Ops)))
		for _, op := range pe.Ops {
			e.byte(byte(op.Kind))
			e.byte(byte(op.Color))
			e.byte(byte(op.OutColor))
			e.varint(int64(op.N))
			e.varint(int64(op.Off))
			e.varint(int64(op.N2))
			e.varint(int64(op.Off2))
			e.varint(int64(op.Slot))
			e.byte(byte(op.Reduce))
		}
		colors := make([]mesh.Color, 0, len(pe.Configs))
		for col := range pe.Configs {
			colors = append(colors, col)
		}
		sort.Slice(colors, func(i, j int) bool { return colors[i] < colors[j] })
		e.uvarint(uint64(len(colors)))
		for _, col := range colors {
			cfgs := pe.Configs[col]
			e.byte(byte(col))
			e.uvarint(uint64(len(cfgs)))
			for _, cfg := range cfgs {
				e.byte(byte(cfg.Accept))
				e.byte(byte(cfg.Forward))
				e.varint(int64(cfg.Times))
			}
		}
		e.varint(int64(pe.ClockSlots))
	}
	return e.buf, nil
}

// UnmarshalBinary decodes a spec previously produced by MarshalBinary,
// replacing the receiver's contents.
func (s *Spec) UnmarshalBinary(data []byte) error {
	d := &wireDec{buf: data}
	if v := d.byte(); v != SpecCodecVersion {
		if d.err != nil {
			return fmt.Errorf("fabric: spec codec: %v", d.err)
		}
		return fmt.Errorf("fabric: spec codec version %d, this build reads %d", v, SpecCodecVersion)
	}
	width := int(d.uvarint())
	height := int(d.uvarint())
	n := int(d.uvarint())
	if d.err != nil {
		return fmt.Errorf("fabric: spec codec: %v", d.err)
	}
	if width < 1 || height < 1 || n < 0 || n > width*height {
		return fmt.Errorf("fabric: spec codec: %d PEs on %dx%d grid", n, width, height)
	}
	out := NewSpec(width, height)
	for i := 0; i < n; i++ {
		c := mesh.Coord{X: int(d.varint()), Y: int(d.varint())}
		if d.err != nil {
			return fmt.Errorf("fabric: spec codec: PE %d: %v", i, d.err)
		}
		if c.X < 0 || c.X >= width || c.Y < 0 || c.Y >= height {
			return fmt.Errorf("fabric: spec codec: PE %v outside %dx%d grid", c, width, height)
		}
		pe := out.PE(c)
		if ni := d.uvarint(); ni > 0 {
			if ni > uint64(d.remaining())/4 {
				return fmt.Errorf("fabric: spec codec: PE %v init truncated", c)
			}
			pe.Init = make([]float32, ni)
			for j := range pe.Init {
				pe.Init[j] = d.f32()
			}
		}
		nops := d.uvarint()
		if d.err == nil && nops > 0 {
			if nops > uint64(d.remaining()) { // each op is ≥ 9 bytes; cheap sanity bound
				return fmt.Errorf("fabric: spec codec: PE %v ops truncated", c)
			}
			pe.Ops = make([]Op, nops)
			for j := range pe.Ops {
				pe.Ops[j] = Op{
					Kind:     OpKind(d.byte()),
					Color:    mesh.Color(d.byte()),
					OutColor: mesh.Color(d.byte()),
					N:        int(d.varint()),
					Off:      int(d.varint()),
					N2:       int(d.varint()),
					Off2:     int(d.varint()),
					Slot:     int(d.varint()),
					Reduce:   ReduceOp(d.byte()),
				}
			}
		}
		ncolors := int(d.uvarint())
		for j := 0; j < ncolors && d.err == nil; j++ {
			col := mesh.Color(d.byte())
			ncfgs := d.uvarint()
			if d.err != nil || ncfgs > uint64(d.remaining()) {
				return fmt.Errorf("fabric: spec codec: PE %v configs truncated", c)
			}
			cfgs := make([]RouterConfig, ncfgs)
			for k := range cfgs {
				cfgs[k] = RouterConfig{
					Accept:  mesh.Direction(d.byte()),
					Forward: mesh.DirSet(d.byte()),
					Times:   int(d.varint()),
				}
			}
			if pe.Configs == nil {
				pe.Configs = make(map[mesh.Color][]RouterConfig, ncolors)
			}
			pe.Configs[col] = cfgs
		}
		pe.ClockSlots = int(d.varint())
		if d.err != nil {
			return fmt.Errorf("fabric: spec codec: PE %v: %v", c, d.err)
		}
	}
	if d.remaining() != 0 {
		return fmt.Errorf("fabric: spec codec: %d trailing bytes", d.remaining())
	}
	*s = *out
	return nil
}

// wireEnc appends primitive values to a growing buffer.
type wireEnc struct {
	buf []byte
}

func (e *wireEnc) byte(b byte)      { e.buf = append(e.buf, b) }
func (e *wireEnc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *wireEnc) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *wireEnc) f32(v float32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(v))
}

// wireDec reads primitive values, latching the first error so callers can
// decode a run of fields and check once.
type wireDec struct {
	buf []byte
	off int
	err error
}

func (d *wireDec) remaining() int { return len(d.buf) - d.off }

func (d *wireDec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated at offset %d", d.off)
	}
}

func (d *wireDec) byte() byte {
	if d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *wireDec) uvarint() uint64 {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *wireDec) varint() int64 {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *wireDec) f32() float32 {
	if d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := math.Float32frombits(binary.LittleEndian.Uint32(d.buf[d.off:]))
	d.off += 4
	return v
}
