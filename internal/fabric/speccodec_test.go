package fabric

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/mesh"
)

// codecSpec builds a small spec exercising every encoded field: init
// vectors, all op scalar fields, multi-color multi-config routers, and
// clock slots.
func codecSpec() *Spec {
	s := NewSpec(3, 2)
	a := s.PE(mesh.Coord{X: 0, Y: 0})
	a.Init = []float32{1.5, -2.25, 3.125}
	a.Ops = []Op{
		{Kind: OpSend, Color: 2, N: 3},
		{Kind: OpSendRecvReduce, Color: 1, OutColor: 2, N: 2, Off: 1, N2: 2, Off2: 0, Reduce: OpMax},
		{Kind: OpSampleClock, Slot: 1},
	}
	a.ClockSlots = 2
	a.AddConfig(2, RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(mesh.East), Times: 1})
	a.AddConfig(2, RouterConfig{Accept: mesh.East, Forward: mesh.Dirs(mesh.Ramp)})
	a.AddConfig(1, RouterConfig{Accept: mesh.East, Forward: mesh.Dirs(mesh.Ramp)})

	b := s.PE(mesh.Coord{X: 1, Y: 0})
	b.Ops = []Op{{Kind: OpRecvReduce, Color: 2, N: 3, Reduce: OpSum}}
	b.AddConfig(2, RouterConfig{Accept: mesh.West, Forward: mesh.Dirs(mesh.Ramp, mesh.East)})
	b.AddConfig(1, RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(mesh.West)})

	c := s.PE(mesh.Coord{X: 2, Y: 1})
	c.Ops = []Op{{Kind: OpBusyWrite, N: 7}}
	return s
}

func TestSpecCodecRoundTrip(t *testing.T) {
	s := codecSpec()
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("encoding is not deterministic")
	}
	var got Spec
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Width != s.Width || got.Height != s.Height || len(got.PEs) != len(s.PEs) {
		t.Fatalf("decoded %dx%d with %d PEs, want %dx%d with %d",
			got.Width, got.Height, len(got.PEs), s.Width, s.Height, len(s.PEs))
	}
	for coord, pe := range s.PEs {
		d := got.PEs[coord]
		if d == nil {
			t.Fatalf("PE %v missing after decode", coord)
		}
		if !reflect.DeepEqual(pe.Init, d.Init) || !reflect.DeepEqual(pe.Ops, d.Ops) ||
			pe.ClockSlots != d.ClockSlots || !reflect.DeepEqual(pe.Configs, d.Configs) {
			t.Fatalf("PE %v decoded differently:\n got %+v\nwant %+v", coord, d, pe)
		}
	}
	// The canonical form is a fixed point: re-encoding the decoded spec
	// reproduces the bytes.
	redata, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, redata) {
		t.Fatal("decode→encode is not byte-identical")
	}
}

func TestSpecCodecRejectsCorruption(t *testing.T) {
	data, err := codecSpec().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Unknown version byte.
	bad := append([]byte(nil), data...)
	bad[0] = 99
	var s Spec
	if err := s.UnmarshalBinary(bad); err == nil {
		t.Fatal("version 99 accepted")
	}
	// Truncation at every prefix length must error, not panic.
	for n := 0; n < len(data); n++ {
		var s Spec
		if err := s.UnmarshalBinary(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing garbage is rejected.
	var s2 Spec
	if err := s2.UnmarshalBinary(append(append([]byte(nil), data...), 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}
