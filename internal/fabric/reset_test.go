package fabric

import (
	"testing"

	"repro/internal/mesh"
)

func sameResult(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if got.Cycles != want.Cycles {
		t.Errorf("%s: cycles %d, want %d", label, got.Cycles, want.Cycles)
	}
	if got.Stats != want.Stats {
		t.Errorf("%s: stats %+v, want %+v", label, got.Stats, want.Stats)
	}
	if len(got.Acc) != len(want.Acc) {
		t.Fatalf("%s: %d PEs in result, want %d", label, len(got.Acc), len(want.Acc))
	}
	for c, w := range want.Acc {
		g := got.Acc[c]
		if len(g) != len(w) {
			t.Fatalf("%s: PE %v acc length %d, want %d", label, c, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: PE %v acc[%d] = %v, want %v", label, c, i, g[i], w[i])
			}
		}
	}
	for c, w := range want.Clocks {
		g := got.Clocks[c]
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: PE %v clock[%d] = %v, want %v", label, c, i, g[i], w[i])
			}
		}
	}
}

// TestResetReproducesFreshRun: a Reset fabric must replay bit for bit what
// a fresh New produces, including the RNG-driven behaviours (clock skew
// offsets and thermal no-op streams), across several consecutive resets.
func TestResetReproducesFreshRun(t *testing.T) {
	opts := []Options{
		{},
		{ThermalNoopRate: 0.07, Seed: 21, ClockSkewMax: 256},
		{TR: 4, QueueCap: 2},
	}
	for _, opt := range opts {
		spec := twoPE(96)
		fresh, err := New(spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Run()
		if err != nil {
			t.Fatal(err)
		}
		f, err := New(spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			got, err := f.Run()
			if err != nil {
				t.Fatalf("replay %d: %v", rep, err)
			}
			sameResult(t, want, got, "reset replay")
			if err := f.Reset(spec); err != nil {
				t.Fatalf("reset %d: %v", rep, err)
			}
		}
	}
}

// TestResetRebindsInputs: resetting with a spec holding different Init
// vectors must compute with the new data (the pooled-replay contract).
func TestResetRebindsInputs(t *testing.T) {
	spec := twoPE(8)
	f, err := New(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range spec.PEs[mesh.Coord{X: 1, Y: 0}].Init {
		spec.PEs[mesh.Coord{X: 1, Y: 0}].Init[i] = float32(10 * i)
	}
	if err := f.Reset(spec); err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Acc[mesh.Coord{}] {
		if v != float32(10*i) {
			t.Fatalf("element %d: %v, want %v", i, v, float32(10*i))
		}
	}
}

// TestResetSurvivesFailedRun: a fabric whose run errored (protocol
// violation) must be fully re-armable.
func TestResetSurvivesFailedRun(t *testing.T) {
	bad := twoPE(8)
	bad.PEs[mesh.Coord{}].Ops = []Op{{Kind: OpRecvStore, Color: 0, N: 4}}
	f, err := New(bad, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err == nil {
		t.Fatal("want protocol error")
	}
	good := twoPE(8)
	if err := f.Reset(good); err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Acc[mesh.Coord{}] {
		if v != float32(i) {
			t.Fatalf("element %d after reset: %v", i, v)
		}
	}
}

// TestResetRejectsStructuralMismatch: a spec with a different shape or PE
// set must be refused, not silently misexecuted.
func TestResetRejectsStructuralMismatch(t *testing.T) {
	f, err := New(twoPE(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if err := f.Reset(twoPE(8)); err != nil {
		t.Fatalf("matching spec refused: %v", err)
	}
	other := NewSpec(3, 1)
	if err := f.Reset(other); err == nil {
		t.Error("accepted wrong-shaped spec")
	}
	moved := NewSpec(2, 1)
	moved.PE(mesh.Coord{X: 0, Y: 0})
	moved.PE(mesh.Coord{X: 1, Y: 0}).AddConfig(3, RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(mesh.West)})
	if err := f.Reset(moved); err == nil {
		t.Error("accepted spec with different routing colors")
	}
}
