package fabric

import (
	"strings"
	"testing"

	"repro/internal/mesh"
)

func TestTracerRecordsLifecycle(t *testing.T) {
	tr := &Tracer{}
	f, err := New(twoPE(4), Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	counts := map[TraceKind]int{}
	lastCycle := int64(-1)
	for _, e := range tr.Events {
		counts[e.Kind]++
		if e.Cycle < lastCycle {
			t.Fatalf("events out of order: %d after %d", e.Cycle, lastCycle)
		}
		lastCycle = e.Cycle
	}
	// 4 data + 1 control: injected, routed at the sender, routed+delivered
	// at the receiver, consumed.
	if counts[EvInject] != 5 {
		t.Errorf("injects %d, want 5", counts[EvInject])
	}
	if counts[EvDeliver] != 5 {
		t.Errorf("delivers %d, want 5", counts[EvDeliver])
	}
	if counts[EvConsume] != 5 {
		t.Errorf("consumes %d, want 5", counts[EvConsume])
	}
	if counts[EvRoute] < 10 {
		t.Errorf("routes %d, want >= 10", counts[EvRoute])
	}
	out := tr.Render(nil)
	for _, want := range []string{"inject", "route", "deliver", "consume"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	sum := tr.Summary()
	if sum[mesh.Coord{}][EvConsume] != 5 {
		t.Errorf("summary consume at root: %d", sum[mesh.Coord{}][EvConsume])
	}
}

func TestTracerCapDropsExcess(t *testing.T) {
	tr := &Tracer{Cap: 3}
	f, err := New(twoPE(16), Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 3 {
		t.Errorf("stored %d events, cap 3", len(tr.Events))
	}
	if tr.Dropped == 0 {
		t.Error("no drops recorded")
	}
	if !strings.Contains(tr.Render(nil), "dropped") {
		t.Error("render does not mention drops")
	}
}

func TestTracerFilter(t *testing.T) {
	tr := &Tracer{}
	f, err := New(twoPE(2), Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	only := tr.Render(func(e TraceEvent) bool { return e.Kind == EvConsume })
	if strings.Contains(only, "inject") {
		t.Error("filter leaked inject events")
	}
	if !strings.Contains(only, "consume") {
		t.Error("filter dropped consume events")
	}
}
