package fabric

import (
	"testing"

	"repro/internal/mesh"
)

// starLike builds p-1 senders all targeting PE 0 on one color, each
// sender's router turning to pass-through after its own transfer — the
// Star Reduce skeleton.
func starLike(p, b int) *Spec {
	s := NewSpec(p, 1)
	root := s.PE(mesh.Coord{})
	for v := 1; v < p; v++ {
		root.Ops = append(root.Ops, Op{Kind: OpRecvReduce, Color: 0, N: b})
	}
	root.Init = make([]float32, b)
	root.AddConfig(0, RouterConfig{Accept: mesh.East, Forward: mesh.Dirs(mesh.Ramp), Times: p - 1})
	for v := 1; v < p; v++ {
		pe := s.PE(mesh.Coord{X: v, Y: 0})
		pe.Init = make([]float32, b)
		for i := range pe.Init {
			pe.Init[i] = 1
		}
		pe.Ops = []Op{{Kind: OpSend, Color: 0, N: b}}
		pe.AddConfig(0, RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(mesh.West), Times: 1})
		if v < p-1 {
			pe.AddConfig(0, RouterConfig{Accept: mesh.East, Forward: mesh.Dirs(mesh.West)})
		}
	}
	return s
}

func runCycles(t *testing.T, s *Spec, opt Options) int64 {
	t.Helper()
	f, err := New(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Cycles
}

// TestTaskActivationChargesPerTransfer reproduces the §8.5 observation:
// the per-transfer task wake-up hits Star hardest because its root pays
// it P-1 times, while a single long transfer pays it once.
func TestTaskActivationChargesPerTransfer(t *testing.T) {
	const act = 20
	p, b := 9, 16
	base := runCycles(t, starLike(p, b), Options{})
	slow := runCycles(t, starLike(p, b), Options{TaskActivation: act})
	extra := slow - base
	want := int64(act * (p - 1))
	// Some of the stalls overlap with wavelets already queued; the total
	// must be close to (P-1)·act and definitely dominated by it.
	if extra < want-2*act || extra > want+2*act {
		t.Errorf("activation overhead %d cycles, want ≈ %d", extra, want)
	}

	// A single transfer of the same total volume pays once.
	one := twoPE(b * (p - 1))
	baseOne := runCycles(t, one, Options{})
	slowOne := runCycles(t, twoPE(b*(p-1)), Options{TaskActivation: act})
	if d := slowOne - baseOne; d < act-2 || d > act+4 {
		t.Errorf("single-transfer activation overhead %d cycles, want ≈ %d", d, act)
	}
}

// TestTaskActivationPreservesResults: the knob must not change what is
// computed.
func TestTaskActivationPreservesResults(t *testing.T) {
	s := starLike(6, 8)
	f, err := New(s, Options{TaskActivation: 13})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Acc[mesh.Coord{}] {
		if v != 5 {
			t.Fatalf("element %d: %v, want 5", i, v)
		}
	}
}
