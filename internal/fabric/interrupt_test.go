package fabric

import (
	"errors"
	"strings"
	"testing"
)

// TestInterruptAborts: a watchdog hook returning an error stops the run
// long before MaxCycles, with the hook's error wrapped.
func TestInterruptAborts(t *testing.T) {
	f, err := New(twoPE(256), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("deadline")
	f.SetInterrupt(func() error { return sentinel })
	_, err = f.Run()
	if !errors.Is(err, sentinel) {
		t.Fatalf("want wrapped sentinel, got %v", err)
	}
	if !strings.Contains(err.Error(), "interrupted at cycle") {
		t.Fatalf("error %q lacks cycle diagnostic", err)
	}
}

// TestInterruptNilIsFree: a nil hook leaves runs untouched and
// bit-identical to a fabric that never had one installed.
func TestInterruptNilIsFree(t *testing.T) {
	base, err := New(twoPE(64), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	f, err := New(twoPE(64), Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.SetInterrupt(func() error { return nil })
	f.SetInterrupt(nil)
	got, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles {
		t.Fatalf("cycles %d != %d", got.Cycles, want.Cycles)
	}
}

// TestInterruptBenignHook: a hook that always returns nil must not
// perturb the result.
func TestInterruptBenignHook(t *testing.T) {
	base, err := New(twoPE(64), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	f, err := New(twoPE(64), Options{})
	if err != nil {
		t.Fatal(err)
	}
	polls := 0
	f.SetInterrupt(func() error { polls++; return nil })
	got, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if polls == 0 {
		t.Fatal("hook never polled")
	}
	if got.Cycles != want.Cycles {
		t.Fatalf("cycles %d != %d", got.Cycles, want.Cycles)
	}
}
