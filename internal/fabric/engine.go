package fabric

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"strings"

	"repro/internal/mesh"
)

// Options configure the physical parameters of the simulated fabric.
type Options struct {
	// TR is the ramp latency in cycles between a processor and its router,
	// in each direction. The paper measures it to be 2 on the WSE-2; zero
	// selects that default, and a negative value selects a literal
	// zero-latency ramp (useful for ablations).
	TR int
	// QueueCap is the per-color per-direction router input queue depth.
	// Hardware queues are shallow; the default of 4 reproduces tight
	// backpressure while letting single-cycle pipelines stream.
	QueueCap int
	// MaxCycles aborts runs that exceed this cycle count (0 = generous
	// default).
	MaxCycles int64
	// ClockSkewMax, when positive, gives each PE a deterministic
	// pseudo-random local clock offset in [0, ClockSkewMax). The paper's
	// PEs have independent clocks (§8.1); the measurement methodology of
	// §8.3 exists to calibrate this away.
	ClockSkewMax int64
	// ThermalNoopRate, when positive, is the per-cycle probability that a
	// processor inserts a no-op, modelling the wafer's thermal throttling
	// (§8.1: "PEs may insert no-ops to regulate thermal stress").
	ThermalNoopRate float64
	// TaskActivation charges the given number of cycles when a receive
	// op consumes its first wavelet, modelling the dataflow task wake-up
	// ("tasks can be activated by wavelets", §2.2). The paper observed
	// this overhead makes the measured Star slower than predicted
	// because it pays per incoming transfer (§8.5). Default 0 (the
	// idealised fabric the paper's model describes).
	TaskActivation int
	// Seed drives the deterministic RNG used for clock skew and thermal
	// no-ops.
	Seed uint64
	// Shards, when > 1, partitions the PEs into that many contiguous
	// row-major bands, each stepped by its own goroutine under a cycle
	// barrier. The engine's intra-cycle semantics are order-independent
	// (queue pushes and pops cross cycle boundaries before becoming
	// visible to the other endpoint), so sharded runs produce bit-identical
	// results to serial runs; sharding only changes wall-clock time.
	//
	// 0 (unset) auto-tunes: fabrics large enough to amortise the cycle
	// barrier are sharded across GOMAXPROCS, small fabrics run the serial
	// engine — see autoShards. Explicit values are honoured exactly: 1 (or
	// any negative value) forces the serial engine, > 1 that many bands.
	// Results are bit-identical in every mode, so auto-tuning never changes
	// what a run computes, only how fast. Shards is ignored (forced serial)
	// when a Tracer is attached.
	Shards int
	// Tracer, when non-nil, records fabric events (wavelet movement,
	// config advancement, op completion) for debugging.
	Tracer *Tracer
}

// DefaultTR is the ramp latency the paper determined for the WSE-2.
const DefaultTR = 2

// DefaultQueueCap is the router input queue depth selected when
// Options.QueueCap is zero or negative.
const DefaultQueueCap = 4

// DefaultMaxCycles is the simulated-cycle budget selected when
// Options.MaxCycles is zero or negative: generous enough for any one-shot
// experiment (serving loops cap it far lower, see wse.Session).
const DefaultMaxCycles = 1 << 34

func (o Options) withDefaults() Options {
	if o.TR == 0 {
		o.TR = DefaultTR
	}
	if o.TR < 0 {
		o.TR = 0
	}
	if o.QueueCap <= 0 {
		o.QueueCap = DefaultQueueCap
	}
	if o.MaxCycles <= 0 {
		o.MaxCycles = DefaultMaxCycles
	}
	return o
}

// Canonical resolves every defaulted field to the concrete value the
// engine would run under, so two Options that execute identically compare
// equal. The noise parameters are clamped into their effective ranges, the
// Seed is dropped when nothing draws from the RNG, Shards at or below one
// collapses to the serial engine's zero, and the Tracer handle (a debug
// attachment, not an execution parameter) is cleared. Cache keys and
// persisted plans are derived from canonical options, which is what keeps
// a plan stored by one release addressable by the next.
func (o Options) Canonical() Options {
	o = o.withDefaults()
	if o.ClockSkewMax < 0 {
		o.ClockSkewMax = 0
	}
	if o.ThermalNoopRate <= 0 {
		o.ThermalNoopRate = 0
	}
	if o.TaskActivation < 0 {
		o.TaskActivation = 0
	}
	if o.ClockSkewMax == 0 && o.ThermalNoopRate == 0 {
		o.Seed = 0
	}
	if o.Shards <= 1 {
		o.Shards = 0
	}
	o.Tracer = nil
	return o
}

// colorState is a router's runtime state for one color: the configuration
// list with the active index and remaining absorb count, and the input
// queue per arrival direction. Color states live in one flat slice grouped
// by router and sorted by color. Scheduling is per router: an active router
// steps its flagged color states in ascending color order, so when two
// colors of one router contend for a wire in the same cycle, the lower
// color wins — in every execution mode, whatever order routers are visited
// in (cross-router interactions all defer to the next cycle).
type colorState struct {
	configs     []RouterConfig
	idx         int
	times       int
	queues      [mesh.NumDirections]waveQueue
	color       mesh.Color
	router      int32
	active      bool // flagged to step next cycle
	wakePending bool
}

func (cs *colorState) advance() {
	if cs.times == 0 { // final configuration: absorbs controls forever
		return
	}
	cs.times--
	if cs.times == 0 && cs.idx < len(cs.configs)-1 {
		cs.idx++
		cs.times = cs.configs[cs.idx].Times
	}
}

// anyVisible reports whether any queue of the color state holds a
// consumer-visible wavelet (on any side, accepted or not).
func (cs *colorState) anyVisible() bool {
	for d := range cs.queues {
		if cs.queues[d].visLen() > 0 {
			return true
		}
	}
	return false
}

type router struct {
	csBase  int32                     // first colorState of this router in Fabric.colorStates
	nCS     int32                     // number of color states
	inList  bool                      // scheduled in a shard's active router list
	csOff   [mesh.NumColors]int16     // per-color offset+1 into the router's group (0 = color unused)
	outUsed [mesh.NumDirections]int64 // cycle+1 stamp of the last wire use
}

// proc is a processor's runtime state.
type proc struct {
	ops         []Op
	opIdx       int
	elem        int
	ctlPhase    bool // data elements sent/consumed; control phase pending
	rElem       int  // inbound progress of full-duplex ops
	rDone       bool
	sDone       bool
	actLeft     int  // remaining task-activation stall cycles
	actDone     bool // activation already paid for the current op
	acc         []float32
	inbox       [mesh.NumColors]int32 // index+1 into Fabric.inboxes (0 = no deliveries on color)
	inboxTotal  int
	latchVal    float32
	latchCtl    bool
	latchFull   bool
	clock       []int64
	skew        int64
	rng         uint64
	received    int64
	done        bool
	inList      bool
	wakePending bool
}

// Stats aggregates fabric-level counters that correspond directly to the
// paper's cost metrics: Hops is the measured energy E (router-to-router
// wavelet moves), MaxReceived the measured contention C (data wavelets
// consumed by the busiest processor), RampMoves the traffic over processor
// ramps, Noops the thermal no-ops inserted.
type Stats struct {
	Hops        int64
	RampMoves   int64
	MaxReceived int64
	MaxQueueLen int
	Noops       int64
	// Steps counts unit-step invocations (active routers + processors
	// visited across all cycles) — the engine's work measure, as opposed
	// to Cycles, its time measure. In an event-scheduled engine the two
	// diverge exactly when units sleep; Steps/Cycles is the mean active
	// unit count. Counted once per shard per cycle, never in the inner
	// stepping loop.
	Steps int64
}

// Result reports a completed run. The result owns its data: Acc and Clocks
// are deep copies of the fabric's final state, so a Result stays valid
// after the fabric is Reset and re-run (the pooled replay path).
type Result struct {
	// Cycles is the total cycle count until every processor finished and
	// the network drained.
	Cycles int64
	// Acc maps each programmed PE to its final accumulator contents.
	Acc map[mesh.Coord][]float32
	// Clocks maps each PE to its sampled local-clock slots.
	Clocks map[mesh.Coord][]int64
	// Stats holds the measured cost metrics.
	Stats Stats
}

// Fabric is an instantiated simulation of a Spec. The engine is
// cycle-stepped but event-scheduled: routers and processors sleep while
// blocked and are woken by exactly the fabric events (queue pushes and
// pops) that can unblock them, so simulation work is proportional to
// wavelet movement (the paper's energy metric) rather than PEs×cycles.
//
// All runtime state lives in flat preallocated arrays (routers, procs,
// color states, inbox queues), which buys three things: the per-cycle hot
// loop performs no allocation, Reset can re-arm an instance for a fresh
// run without reallocating anything, and the state partitions cleanly into
// contiguous row-major bands for the sharded engine (Options.Shards).
//
// Intra-cycle semantics are order-independent: a queue push becomes
// visible to its consumer, and a pop frees space for its producer, only at
// the next cycle boundary. Within one router, color states are stepped in
// ascending color order. Together these make the simulation a function of
// the program alone — stepping units in any order, on any number of
// shards, yields bit-identical results.
type Fabric struct {
	opt         Options
	width       int
	height      int
	coords      []mesh.Coord
	grid        []int32                     // dense width*height coord → unit index (-1 = unprogrammed)
	nbrs        [][mesh.NumDirections]int32 // precomputed per-unit neighbour units (-1 = none)
	routers     []router
	procs       []proc
	colorStates []colorState
	inboxes     []waveQueue
	cycle       int64

	// lastSpec/peRefs cache the spec the fabric was last armed from: a
	// Reset with the very same *Spec (the pooled replay path rebinds Init
	// in place and reuses one spec object) skips structural re-validation
	// and all per-PE map lookups.
	lastSpec *Spec
	peRefs   []*PESpec

	shards    []shardState
	unitShard []uint16

	workersUp bool
	cmd       []chan phaseToken
	done      chan int

	// interrupt, when non-nil, is polled every interruptStride cycles; a
	// non-nil return aborts the run with that error. It is the watchdog
	// seam: the plan layer points it at the request context so a stuck
	// replay is cut at its deadline instead of spinning to MaxCycles.
	interrupt func() error
}

type phaseToken uint8

const (
	phaseStep phaseToken = iota
	phaseSync
	phaseQuit
)

// shardDispatchThreshold is the total active-unit count below which a
// sharded fabric steps the cycle on the coordinating goroutine instead of
// paying two barrier crossings; results are identical either way. It is a
// variable so tests can force the parallel path for small fabrics.
var shardDispatchThreshold = 192

// shardState is one band's execution state: its active lists, deferred
// wake buffers, queue-sync lists and counters. With Shards <= 1 a fabric
// has exactly one shard and the same code runs without barriers.
//
// Active lists hold routers, not color states: routers may be visited in
// any order (their cross-router effects all defer to the next cycle), so
// the lists never need sorting; each visited router steps its flagged
// color states in ascending color order, which is the only ordering the
// semantics require.
type shardState struct {
	f  *Fabric
	id int

	curR, nextR []int32 // active router units
	curP, nextP []int32 // active processor units

	// Queues this shard pushed/popped this cycle; their seen cursors are
	// published at the cycle barrier.
	pushedQ, poppedQ []*waveQueue

	// Deferred wakes. Wakes targeting this shard's own units collect in
	// localCS/localP (deduplicated by the target's wakePending flag);
	// wakes crossing shards collect in outCS/outP bucketed by destination
	// and are applied at the cycle barrier by the destination.
	localCS, localP []int32
	outCS, outP     [][]int32

	qPushes, qPops int64 // lifetime router-queue traffic (drain detection)
	pending        int   // unfinished procs owned by this shard
	stats          Stats
	err            error
}

// New instantiates a fabric for the given program. The spec is validated
// first; routing tables and processor state are laid out densely over the
// programmed PEs.
func New(s *Spec, opt Options) (*Fabric, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	coords := make([]mesh.Coord, 0, len(s.PEs))
	for c := range s.PEs {
		coords = append(coords, c)
	}
	sort.Slice(coords, func(i, j int) bool {
		if coords[i].Y != coords[j].Y {
			return coords[i].Y < coords[j].Y
		}
		return coords[i].X < coords[j].X
	})
	f := &Fabric{
		opt:     opt,
		width:   s.Width,
		height:  s.Height,
		coords:  coords,
		grid:    make([]int32, s.Width*s.Height),
		routers: make([]router, len(coords)),
		procs:   make([]proc, len(coords)),
	}
	for i := range f.grid {
		f.grid[i] = -1
	}
	for i, c := range coords {
		f.grid[c.Y*f.width+c.X] = int32(i)
	}
	f.nbrs = make([][mesh.NumDirections]int32, len(coords))
	for i, c := range coords {
		for d := mesh.Direction(0); d < mesh.NumDirections; d++ {
			f.nbrs[i][d] = -1
			if d == mesh.Ramp {
				continue
			}
			if n := c.Add(d); n.X >= 0 && n.X < f.width && n.Y >= 0 && n.Y < f.height {
				f.nbrs[i][d] = f.grid[n.Y*f.width+n.X]
			}
		}
	}

	// Lay out the color states flat, grouped by router, colors ascending,
	// and pre-create an inbox queue for every (PE, color) with a ramp
	// delivery anywhere in its config list.
	totalCS := 0
	for _, c := range coords {
		totalCS += len(s.PEs[c].Configs)
	}
	f.colorStates = make([]colorState, 0, totalCS)
	var colors []mesh.Color
	for i, c := range coords {
		pe := s.PEs[c]
		r := &f.routers[i]
		r.csBase = int32(len(f.colorStates))
		colors = colors[:0]
		for color := range pe.Configs {
			colors = append(colors, color)
		}
		sort.Slice(colors, func(a, b int) bool { return colors[a] < colors[b] })
		for _, color := range colors {
			cfgs := pe.Configs[color]
			r.csOff[color] = int16(len(f.colorStates)-int(r.csBase)) + 1
			f.colorStates = append(f.colorStates, colorState{
				configs: cfgs,
				times:   cfgs[0].Times,
				color:   color,
				router:  int32(i),
			})
			rampDelivery := false
			for _, cfg := range cfgs {
				if cfg.Forward.Has(mesh.Ramp) {
					rampDelivery = true
					break
				}
			}
			if rampDelivery && f.procs[i].inbox[color] == 0 {
				f.inboxes = append(f.inboxes, waveQueue{})
				f.procs[i].inbox[color] = int32(len(f.inboxes))
			}
		}
		r.nCS = int32(len(f.colorStates)) - r.csBase
	}

	f.initShards()
	f.arm(s)
	return f, nil
}

// autoShardProcs reports the parallelism auto-sharding divides the fabric
// across. It is a variable so tests can model a many-core host on a small
// one; everywhere else it is GOMAXPROCS.
var autoShardProcs = func() int { return runtime.GOMAXPROCS(0) }

// autoShardMinBand is the smallest PE band worth a dedicated shard
// goroutine under auto-tuning. Sharding pays a per-cycle barrier, and a
// session's worker pool may run several replays at once — each extra
// marginal band multiplies runnable goroutines without adding useful
// parallelism. The replay benchmarks put the sharded crossover between
// the p=512 chain (sharding loses) and the 64×64 grid (sharding wins),
// so auto-tuning keeps anything below two ~2K-PE bands serial. Explicit
// Shards values bypass the floor entirely. A variable so tests can model
// large fabrics cheaply.
var autoShardMinBand = 2048

// autoShards derives the shard count for a fabric of n PEs when
// Options.Shards is left at zero: one band per available CPU, but never
// bands smaller than autoShardMinBand PEs — below that the per-cycle
// barrier costs more than the parallel stepping buys. Fabrics that
// derive one band run the serial engine exactly as an explicit Shards=1
// would.
func autoShards(n int) int {
	s := autoShardProcs()
	if max := n / autoShardMinBand; s > max {
		s = max
	}
	if s < 1 {
		s = 1
	}
	return s
}

// initShards partitions the units into contiguous row-major bands.
func (f *Fabric) initShards() {
	n := f.opt.Shards
	if n == 0 {
		n = autoShards(len(f.procs))
	}
	if n < 1 || f.opt.Tracer != nil {
		n = 1
	}
	if n > len(f.procs) {
		n = len(f.procs)
	}
	if n < 1 {
		n = 1
	}
	f.shards = make([]shardState, n)
	f.unitShard = make([]uint16, len(f.procs))
	for i := range f.unitShard {
		f.unitShard[i] = uint16(i * n / len(f.procs))
	}
	for si := range f.shards {
		sh := &f.shards[si]
		sh.f = f
		sh.id = si
		sh.outCS = make([][]int32, n)
		sh.outP = make([][]int32, n)
	}
}

// arm stamps the per-run state of a validated, structurally matching spec
// into the preallocated fabric: accumulators from Init, router configs at
// their first entry, empty queues, the deterministic RNG chain, and the
// initial processor wake list. It is the shared tail of New and Reset.
func (f *Fabric) arm(s *Spec) {
	f.cycle = 0
	for i := range f.inboxes {
		f.inboxes[i].reset()
	}
	for si := range f.shards {
		sh := &f.shards[si]
		sh.curR = sh.curR[:0]
		sh.nextR = sh.nextR[:0]
		sh.curP = sh.curP[:0]
		sh.nextP = sh.nextP[:0]
		sh.pushedQ = sh.pushedQ[:0]
		sh.poppedQ = sh.poppedQ[:0]
		sh.localCS = sh.localCS[:0]
		sh.localP = sh.localP[:0]
		for d := range sh.outCS {
			sh.outCS[d] = sh.outCS[d][:0]
			sh.outP[d] = sh.outP[d][:0]
		}
		sh.qPushes, sh.qPops = 0, 0
		sh.pending = 0
		sh.stats = Stats{}
		sh.err = nil
	}

	sameSpec := s == f.lastSpec
	if !sameSpec {
		if f.peRefs == nil {
			f.peRefs = make([]*PESpec, len(f.coords))
		}
		for i, c := range f.coords {
			f.peRefs[i] = s.PEs[c]
		}
		f.lastSpec = s
	}
	rng := f.opt.Seed | 1
	for i := range f.coords {
		pe := f.peRefs[i]
		r := &f.routers[i]
		r.outUsed = [mesh.NumDirections]int64{}
		r.inList = false
		for k := r.csBase; k < r.csBase+r.nCS; k++ {
			cs := &f.colorStates[k]
			if !sameSpec {
				cs.configs = pe.Configs[cs.color]
			}
			cs.idx = 0
			cs.times = cs.configs[0].Times
			cs.active = false
			cs.wakePending = false
			for d := range cs.queues {
				cs.queues[d].reset()
			}
		}

		p := &f.procs[i]
		p.ops = pe.Ops
		p.acc = append(p.acc[:0], pe.Init...)
		// Ops address acc[Off..Off+N); make sure the buffer exists even
		// when the PE contributed no input of its own.
		need := len(p.acc)
		for _, op := range pe.Ops {
			n := 0
			switch op.Kind {
			case OpSend, OpRecvReduce, OpRecvReduceSend, OpRecvStore:
				n = op.Off + op.N
			case OpSendRecvReduce, OpSendRecvStore:
				n = op.Off + op.N
				if n2 := op.Off2 + op.N2; n2 > n {
					n = n2
				}
			}
			if n > need {
				need = n
			}
		}
		for len(p.acc) < need {
			p.acc = append(p.acc, 0)
		}
		if len(p.clock) == pe.ClockSlots {
			for j := range p.clock {
				p.clock[j] = 0
			}
		} else {
			p.clock = make([]int64, pe.ClockSlots)
		}
		rng = splitmix(rng)
		p.rng = rng
		p.skew = 0
		if f.opt.ClockSkewMax > 0 {
			rng = splitmix(rng)
			p.skew = int64(rng % uint64(f.opt.ClockSkewMax))
		}
		p.opIdx, p.elem, p.rElem = 0, 0, 0
		p.ctlPhase, p.rDone, p.sDone = false, false, false
		p.actLeft, p.actDone = 0, false
		p.inboxTotal = 0
		p.latchVal, p.latchCtl, p.latchFull = 0, false, false
		p.received = 0
		p.inList = false
		p.wakePending = false
		p.done = len(p.ops) == 0
		if !p.done {
			sh := &f.shards[f.unitShard[i]]
			sh.pending++
			p.inList = true
			sh.curP = append(sh.curP, int32(i))
		}
	}
}

// Reset re-arms the fabric for a fresh run of a spec with the same
// structure (same PE set, op-list lengths and routing-table shapes) as the
// one it was built from — typically a per-replay binding of the same
// compiled plan with new Init vectors. Nothing is reallocated: queue
// buffers, accumulators, active lists and routing state are all reused,
// and the deterministic RNG chain (clock skew, thermal no-ops) is restored
// exactly, so a Reset fabric reproduces a fresh New bit for bit.
func (f *Fabric) Reset(s *Spec) error {
	if s != f.lastSpec { // a re-armed identical spec object needs no re-checking
		if s.Width != f.width || s.Height != f.height {
			return fmt.Errorf("fabric: reset with %dx%d spec, fabric is %dx%d", s.Width, s.Height, f.width, f.height)
		}
		if len(s.PEs) != len(f.coords) {
			return fmt.Errorf("fabric: reset with %d PEs, fabric has %d", len(s.PEs), len(f.coords))
		}
		for i, c := range f.coords {
			pe := s.PEs[c]
			if pe == nil {
				return fmt.Errorf("fabric: reset spec lacks PE %v", c)
			}
			if len(pe.Configs) != int(f.routers[i].nCS) {
				return fmt.Errorf("fabric: reset PE %v has %d colors, fabric has %d", c, len(pe.Configs), f.routers[i].nCS)
			}
			for k := f.routers[i].csBase; k < f.routers[i].csBase+f.routers[i].nCS; k++ {
				if pe.Configs[f.colorStates[k].color] == nil {
					return fmt.Errorf("fabric: reset PE %v lacks color %d", c, f.colorStates[k].color)
				}
			}
		}
	}
	f.arm(s)
	return nil
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (f *Fabric) neighbor(i int32, d mesh.Direction) int32 { return f.nbrs[i][d] }

// csIndex returns the flat color-state index of (unit, color), or -1.
func (f *Fabric) csIndex(unit int32, c mesh.Color) int32 {
	r := &f.routers[unit]
	off := r.csOff[c]
	if off == 0 {
		return -1
	}
	return r.csBase + int32(off) - 1
}

// inboxQ returns unit i's inbox queue for a color, or nil.
func (f *Fabric) inboxQ(i int32, c mesh.Color) *waveQueue {
	idx := f.procs[i].inbox[c]
	if idx == 0 {
		return nil
	}
	return &f.inboxes[idx-1]
}

// wakeCS defers a wake of a color state to the next cycle. Wakes cross the
// cycle barrier even within one shard so that serial and sharded execution
// see identical schedules; own-shard wakes are deduplicated at emit time
// through the target's wakePending flag (safe: only the owner touches it).
func (sh *shardState) wakeCS(csI int32) {
	if csI < 0 {
		return
	}
	cs := &sh.f.colorStates[csI]
	dest := int(sh.f.unitShard[cs.router])
	if dest == sh.id {
		if !cs.wakePending {
			cs.wakePending = true
			sh.localCS = append(sh.localCS, csI)
		}
		return
	}
	sh.outCS[dest] = append(sh.outCS[dest], csI)
}

// wakeProc defers a wake of a processor to the next cycle.
func (sh *shardState) wakeProc(i int32) {
	p := &sh.f.procs[i]
	dest := int(sh.f.unitShard[i])
	if dest == sh.id {
		if !p.wakePending {
			p.wakePending = true
			sh.localP = append(sh.localP, i)
		}
		return
	}
	sh.outP[dest] = append(sh.outP[dest], i)
}

// scheduleCS flags a color state to step next cycle and schedules its
// router. Called only by the owner shard (during sync for wakes, during
// step for stays).
func (sh *shardState) scheduleCS(csI int32) {
	f := sh.f
	cs := &f.colorStates[csI]
	cs.active = true
	r := &f.routers[cs.router]
	if !r.inList {
		r.inList = true
		sh.nextR = append(sh.nextR, cs.router)
	}
}

func (sh *shardState) stayProc(i int32) {
	p := &sh.f.procs[i]
	if !p.inList && !p.done {
		p.inList = true
		sh.nextP = append(sh.nextP, i)
	}
}

// phaseStep processes this shard's active units for one cycle. Each active
// router steps its flagged color states in ascending color order; routers
// themselves may be visited in any order. Routers run before processors
// (matching the serial loop's router-then-processor order within a cycle,
// observable through the undelivered-inbox protocol check).
func (sh *shardState) phaseStep() {
	f := sh.f
	sh.stats.Steps += int64(len(sh.curR) + len(sh.curP))
	for _, ri := range sh.curR {
		r := &f.routers[ri]
		r.inList = false
		stay := false
		for k := r.csBase; k < r.csBase+r.nCS; k++ {
			cs := &f.colorStates[k]
			if !cs.active {
				continue
			}
			cs.active = false
			if sh.stepColor(k) {
				cs.active = true
				stay = true
			}
		}
		if stay && !r.inList {
			r.inList = true
			sh.nextR = append(sh.nextR, ri)
		}
	}
	for _, pi := range sh.curP {
		p := &f.procs[pi]
		p.inList = false
		stay, err := sh.stepProc(pi)
		if err != nil {
			sh.err = err
			return
		}
		if stay {
			sh.stayProc(pi)
		}
	}
}

// phaseSync runs at the cycle barrier: it publishes this shard's queue
// operations, applies wakes addressed to it (from every shard, itself
// included), and swaps in the next cycle's active lists.
func (sh *shardState) phaseSync() {
	for _, q := range sh.pushedQ {
		q.syncProducer()
	}
	for _, q := range sh.poppedQ {
		q.syncConsumer()
	}
	sh.pushedQ = sh.pushedQ[:0]
	sh.poppedQ = sh.poppedQ[:0]

	f := sh.f
	for _, csI := range sh.localCS {
		f.colorStates[csI].wakePending = false
		sh.scheduleCS(csI)
	}
	sh.localCS = sh.localCS[:0]
	for _, pi := range sh.localP {
		f.procs[pi].wakePending = false
		sh.stayProc(pi)
	}
	sh.localP = sh.localP[:0]
	if len(f.shards) > 1 {
		for si := range f.shards {
			src := &f.shards[si]
			if si == sh.id {
				continue
			}
			for _, csI := range src.outCS[sh.id] {
				sh.scheduleCS(csI)
			}
			src.outCS[sh.id] = src.outCS[sh.id][:0]
			for _, pi := range src.outP[sh.id] {
				sh.stayProc(pi)
			}
			src.outP[sh.id] = src.outP[sh.id][:0]
		}
	}

	sh.curR = sh.curR[:0]
	sh.curR, sh.nextR = sh.nextR, sh.curR
	sh.curP = sh.curP[:0]
	sh.curP, sh.nextP = sh.nextP, sh.curP
}

// Run executes the program to completion and returns the result. It fails
// with a diagnostic error on deadlock (all units blocked while work
// remains), protocol violations (control wavelets out of place), or cycle
// overrun.
func (f *Fabric) Run() (*Result, error) {
	if err := f.runToCompletion(); err != nil {
		return nil, err
	}
	return f.result()
}

// RunColumnar is Run with map-free result assembly: the final
// accumulators land concatenated in res (see ColumnarResult), reusing
// res's buffers across calls, and no per-PE maps or clock samples are
// built. It exists for the batch-replay path, where result-map
// construction is the dominant per-run fixed cost.
func (f *Fabric) RunColumnar(res *ColumnarResult) error {
	if err := f.runToCompletion(); err != nil {
		return err
	}
	return f.resultColumnar(res)
}

// interruptStride is how many cycles pass between watchdog polls. A
// power of two keeps the check a mask + branch; at ~ns per cycle the
// poll latency ceiling is microseconds, far below any useful deadline.
const interruptStride = 1024

// SetInterrupt installs (or, with nil, removes) a watchdog polled every
// interruptStride cycles during runToCompletion; a non-nil return aborts
// the run with that error wrapped. The hook must be fast and must not
// touch the fabric. Callers set it per run and clear it afterwards —
// pooled fabrics are reused and a stale hook would outlive its request.
func (f *Fabric) SetInterrupt(poll func() error) {
	f.interrupt = poll
}

// runToCompletion steps the engine until the program finishes and the
// network drains; result assembly is the caller's choice (maps via
// result, flat via resultColumnar).
func (f *Fabric) runToCompletion() error {
	defer f.stopWorkers()
	for {
		if f.interrupt != nil && f.cycle&(interruptStride-1) == 0 {
			if err := f.interrupt(); err != nil {
				return fmt.Errorf("fabric: interrupted at cycle %d: %w", f.cycle, err)
			}
		}
		pending, inflight, active := 0, int64(0), 0
		for si := range f.shards {
			sh := &f.shards[si]
			if sh.err != nil {
				return sh.err
			}
			pending += sh.pending
			inflight += sh.qPushes - sh.qPops
			active += len(sh.curR) + len(sh.curP)
		}
		if pending == 0 && inflight == 0 {
			break
		}
		if active == 0 {
			return fmt.Errorf("fabric: deadlock at cycle %d; %s", f.cycle, f.describeStall())
		}
		if f.cycle >= f.opt.MaxCycles {
			return fmt.Errorf("fabric: exceeded %d cycles; %s", f.opt.MaxCycles, f.describeStall())
		}
		if len(f.shards) > 1 && active >= shardDispatchThreshold {
			f.dispatch(phaseStep)
			f.dispatch(phaseSync)
		} else {
			for si := range f.shards {
				f.shards[si].phaseStep()
			}
			for si := range f.shards {
				f.shards[si].phaseSync()
			}
		}
		f.cycle++
	}
	return nil
}

// dispatch fans one phase out to the worker goroutines and waits for all
// of them — the cycle barrier of the sharded engine.
func (f *Fabric) dispatch(ph phaseToken) {
	if !f.workersUp {
		f.startWorkers()
	}
	for si := range f.shards {
		f.cmd[si] <- ph
	}
	for range f.shards {
		<-f.done
	}
}

func (f *Fabric) startWorkers() {
	f.cmd = make([]chan phaseToken, len(f.shards))
	f.done = make(chan int, len(f.shards))
	for si := range f.shards {
		f.cmd[si] = make(chan phaseToken)
		go func(sh *shardState, cmd chan phaseToken) {
			for ph := range cmd {
				switch ph {
				case phaseStep:
					sh.phaseStep()
				case phaseSync:
					sh.phaseSync()
				case phaseQuit:
					f.done <- sh.id
					return
				}
				f.done <- sh.id
			}
		}(&f.shards[si], f.cmd[si])
	}
	f.workersUp = true
}

func (f *Fabric) stopWorkers() {
	if !f.workersUp {
		return
	}
	f.dispatch(phaseQuit)
	for si := range f.cmd {
		close(f.cmd[si])
	}
	f.cmd, f.done = nil, nil
	f.workersUp = false
}

// result builds the Result, deep-copying accumulator and clock state out
// of the fabric so the caller's data survives a Reset of this instance.
func (f *Fabric) result() (*Result, error) {
	res := &Result{
		Cycles: f.cycle,
		Acc:    make(map[mesh.Coord][]float32, len(f.coords)),
		Clocks: make(map[mesh.Coord][]int64, len(f.coords)),
	}
	for si := range f.shards {
		sh := &f.shards[si]
		res.Stats.Hops += sh.stats.Hops
		res.Stats.RampMoves += sh.stats.RampMoves
		res.Stats.Noops += sh.stats.Noops
		res.Stats.Steps += sh.stats.Steps
		if sh.stats.MaxQueueLen > res.Stats.MaxQueueLen {
			res.Stats.MaxQueueLen = sh.stats.MaxQueueLen
		}
	}
	totalAcc, totalClk := 0, 0
	for i := range f.procs {
		totalAcc += len(f.procs[i].acc)
		totalClk += len(f.procs[i].clock)
	}
	accBuf := make([]float32, 0, totalAcc)
	clkBuf := make([]int64, 0, totalClk)
	for i, c := range f.coords {
		p := &f.procs[i]
		if p.inboxTotal > 0 {
			return nil, fmt.Errorf("fabric: PE %v finished with %d unconsumed inbox wavelets", c, p.inboxTotal)
		}
		start := len(accBuf)
		accBuf = append(accBuf, p.acc...)
		res.Acc[c] = accBuf[start:len(accBuf):len(accBuf)]
		if len(p.clock) > 0 {
			start := len(clkBuf)
			clkBuf = append(clkBuf, p.clock...)
			res.Clocks[c] = clkBuf[start:len(clkBuf):len(clkBuf)]
		}
		if p.received > res.Stats.MaxReceived {
			res.Stats.MaxReceived = p.received
		}
	}
	return res, nil
}

// stepColor attempts to route the head wavelet of one color at one router.
// It returns true when the color state should stay scheduled (it moved a
// wavelet and has more, or it is waiting on a wire or on a ramp-transit
// delay); it returns false when the state goes to sleep, to be woken by a
// push or a downstream pop.
func (sh *shardState) stepColor(csI int32) bool {
	f := sh.f
	cs := &f.colorStates[csI]
	cfg := &cs.configs[cs.idx]
	q := &cs.queues[cfg.Accept]
	e, ok := q.peek()
	if !ok {
		return false // nothing visible on the accepted side; a push or config advance will wake us
	}
	if e.readyAt > f.cycle {
		return true // in ramp/link transit: retry next cycle
	}
	i := cs.router
	r := &f.routers[i]
	qcap := f.opt.QueueCap
	stamp := f.cycle + 1
	nbrs := &f.nbrs[i]
	// Check every forward target; multicast moves atomically or not at all.
	// Iterating set bits touches only the actual targets (usually one). The
	// resolved targets are cached so the commit pass below neither re-walks
	// the tables nor re-checks capacity (this unit is the only producer of
	// its target queues, so the feasibility result cannot change mid-step).
	var targets [mesh.NumDirections]*waveQueue // non-ramp forward queues
	var targetCS [mesh.NumDirections]int32
	for set := cfg.Forward; set != 0; set &= set - 1 {
		d := mesh.Direction(bits.TrailingZeros8(uint8(set)))
		if r.outUsed[d] == stamp {
			return true // wire contention: retry next cycle
		}
		if d == mesh.Ramp {
			if f.inboxQ(i, cs.color).prodLen() >= qcap {
				return false // sleep until the processor drains its inbox
			}
			continue
		}
		nb := nbrs[d]
		if nb < 0 {
			return false // off-grid (caught by Validate; defensive)
		}
		ncsI := f.csIndex(nb, cs.color)
		if ncsI < 0 {
			return false // unroutable color downstream: surfaces as deadlock
		}
		nq := &f.colorStates[ncsI].queues[d.Opposite()]
		if !nq.hasSpace(qcap) {
			return false // sleep until downstream pops
		}
		targets[d] = nq
		targetCS[d] = ncsI
	}
	q.pop()
	sh.poppedQ = append(sh.poppedQ, q)
	sh.qPops++
	if f.opt.Tracer != nil {
		f.opt.Tracer.record(TraceEvent{Cycle: f.cycle, PE: f.coords[i], Kind: EvRoute, Color: cs.color, Forward: cfg.Forward, Ctl: e.w.Ctl})
	}
	// Popping frees space: wake whoever fills this queue.
	if cfg.Accept == mesh.Ramp {
		sh.wakeProc(i)
	} else if up := nbrs[cfg.Accept]; up >= 0 {
		sh.wakeCS(f.csIndex(up, cs.color))
	}
	for set := cfg.Forward; set != 0; set &= set - 1 {
		d := mesh.Direction(bits.TrailingZeros8(uint8(set)))
		r.outUsed[d] = stamp
		if d == mesh.Ramp {
			iq := f.inboxQ(i, cs.color)
			iq.push(waveEntry{w: e.w, readyAt: f.cycle + int64(f.opt.TR)}, qcap)
			sh.pushedQ = append(sh.pushedQ, iq)
			f.procs[i].inboxTotal++
			sh.stats.RampMoves++
			sh.wakeProc(i)
			if f.opt.Tracer != nil {
				f.opt.Tracer.record(TraceEvent{Cycle: f.cycle, PE: f.coords[i], Kind: EvDeliver, Color: cs.color, Ctl: e.w.Ctl})
			}
			continue
		}
		nq := targets[d]
		nq.push(waveEntry{w: e.w, readyAt: stamp}, qcap)
		sh.pushedQ = append(sh.pushedQ, nq)
		sh.qPushes++
		sh.stats.Hops++
		if l := nq.prodLen(); l > sh.stats.MaxQueueLen {
			sh.stats.MaxQueueLen = l
		}
		sh.wakeCS(targetCS[d])
	}
	if e.w.Ctl {
		cs.advance()
		if f.opt.Tracer != nil {
			f.opt.Tracer.record(TraceEvent{Cycle: f.cycle, PE: f.coords[i], Kind: EvAdvance, Color: cs.color, Ctl: true})
		}
	}
	if q.visLen() > 0 { // streaming fast path: more work behind the head
		return true
	}
	return cs.anyVisible()
}

// pushRamp injects a wavelet from processor i into its router; the wavelet
// becomes routable T_R cycles after the send instruction issues.
func (sh *shardState) pushRamp(i int32, w Wavelet) bool {
	f := sh.f
	csI := f.csIndex(i, w.Color)
	if csI < 0 {
		return false
	}
	q := &f.colorStates[csI].queues[mesh.Ramp]
	if !q.push(waveEntry{w: w, readyAt: f.cycle + int64(f.opt.TR)}, f.opt.QueueCap) {
		return false
	}
	sh.pushedQ = append(sh.pushedQ, q)
	sh.qPushes++
	sh.stats.RampMoves++
	sh.wakeCS(csI)
	if f.opt.Tracer != nil {
		f.opt.Tracer.record(TraceEvent{Cycle: f.cycle, PE: f.coords[i], Kind: EvInject, Color: w.Color, Ctl: w.Ctl})
	}
	return true
}

type popState uint8

const (
	popEmpty popState = iota
	popNotReady
	popOK
)

func (sh *shardState) popInbox(i int32, c mesh.Color) (Wavelet, popState) {
	f := sh.f
	q := f.inboxQ(i, c)
	if q == nil || q.visLen() == 0 {
		return Wavelet{}, popEmpty
	}
	e, _ := q.peek()
	if e.readyAt > f.cycle {
		return Wavelet{}, popNotReady
	}
	q.pop()
	sh.poppedQ = append(sh.poppedQ, q)
	f.procs[i].inboxTotal--
	// Draining the inbox may unblock the router's ramp delivery.
	sh.wakeCS(f.csIndex(i, c))
	if f.opt.Tracer != nil {
		f.opt.Tracer.record(TraceEvent{Cycle: f.cycle, PE: f.coords[i], Kind: EvConsume, Color: c, Ctl: e.w.Ctl})
	}
	return e.w, popOK
}

// stepProc advances one processor by one cycle. It returns whether the
// processor should stay scheduled next cycle.
func (sh *shardState) stepProc(i int32) (bool, error) {
	f := sh.f
	p := &f.procs[i]
	if p.done {
		return false, nil
	}
	// Zero-cost ops (clock samples) execute immediately in program order.
	for p.opIdx < len(p.ops) && p.ops[p.opIdx].Kind == OpSampleClock {
		op := p.ops[p.opIdx]
		p.clock[op.Slot] = f.cycle + p.skew
		p.opIdx++
	}
	if p.opIdx >= len(p.ops) {
		if p.inboxTotal > 0 {
			return false, f.failf(i, "program finished with %d undelivered inbox wavelets", p.inboxTotal)
		}
		p.done = true
		sh.pending--
		return false, nil
	}
	if f.opt.ThermalNoopRate > 0 {
		p.rng = splitmix(p.rng)
		if float64(p.rng%(1<<20))/float64(1<<20) < f.opt.ThermalNoopRate {
			sh.stats.Noops++
			return true, nil
		}
	}
	op := &p.ops[p.opIdx]
	switch op.Kind {
	case OpSend:
		if !p.ctlPhase {
			if sh.pushRamp(i, Wavelet{Val: p.acc[op.Off+p.elem], Color: op.Color}) {
				p.elem++
				if p.elem == op.N {
					p.ctlPhase = true
				}
				return true, nil
			}
			return false, nil // ramp full: woken by ramp-queue pop
		}
		if sh.pushRamp(i, Wavelet{Color: op.Color, Ctl: true}) {
			p.finishOp()
			return true, nil
		}
		return false, nil

	case OpSendTrigger:
		if sh.pushRamp(i, Wavelet{Color: op.Color}) {
			p.finishOp()
			return true, nil
		}
		return false, nil

	case OpRecvReduce, OpRecvStore:
		if stay, gated := sh.activationStall(i, op.Color); gated {
			return stay, nil
		}
		w, st := sh.popInbox(i, op.Color)
		if st == popEmpty {
			return false, nil
		}
		if st == popNotReady {
			return true, nil
		}
		if w.Ctl {
			if p.elem != op.N {
				return false, f.failf(i, "%v: control after %d/%d elements", op.Kind, p.elem, op.N)
			}
			p.finishOp()
			return true, nil
		}
		if p.elem >= op.N {
			return false, f.failf(i, "%v: data wavelet beyond %d elements", op.Kind, op.N)
		}
		if op.Kind == OpRecvReduce {
			p.acc[op.Off+p.elem] = op.Reduce.Apply(p.acc[op.Off+p.elem], w.Val)
		} else {
			p.acc[op.Off+p.elem] = w.Val
		}
		p.elem++
		p.received++
		return true, nil

	case OpSendRecvReduce, OpSendRecvStore:
		return sh.stepSendRecv(i, op)

	case OpRecvReduceSend:
		progress := false
		if p.latchFull {
			if sh.pushRamp(i, Wavelet{Val: p.latchVal, Color: op.OutColor, Ctl: p.latchCtl}) {
				wasCtl := p.latchCtl
				p.latchFull = false
				p.latchCtl = false
				progress = true
				if wasCtl {
					p.finishOp()
					return true, nil
				}
			} else if p.latchCtl || p.elem == op.N {
				// Nothing left to receive; blocked purely on the ramp.
				return false, nil
			}
		}
		if !p.latchFull {
			if stay, gated := sh.activationStall(i, op.Color); gated {
				return stay || progress, nil
			}
			w, st := sh.popInbox(i, op.Color)
			switch st {
			case popOK:
				if w.Ctl {
					if p.elem != op.N {
						return false, f.failf(i, "recv-reduce-send: control after %d/%d elements", p.elem, op.N)
					}
					p.latchFull = true
					p.latchCtl = true
				} else {
					if p.elem >= op.N {
						return false, f.failf(i, "recv-reduce-send: data wavelet beyond %d elements", op.N)
					}
					v := op.Reduce.Apply(p.acc[op.Off+p.elem], w.Val)
					p.acc[op.Off+p.elem] = v
					p.latchVal = v
					p.latchFull = true
					p.elem++
					p.received++
				}
				return true, nil
			case popNotReady:
				return true, nil
			case popEmpty:
				// Stay scheduled if the latch made progress or still holds
				// data (it will need the ramp next cycle); otherwise sleep
				// until the inbox fills.
				return progress || p.latchFull, nil
			}
		}
		return progress, nil

	case OpRecvTrigger:
		w, st := sh.popInbox(i, op.Color)
		if st == popEmpty {
			return false, nil
		}
		if st == popNotReady {
			return true, nil
		}
		if w.Ctl {
			return false, f.failf(i, "recv-trigger: unexpected control wavelet")
		}
		p.finishOp()
		return true, nil

	case OpBusyWrite:
		p.elem++
		if p.elem >= op.N {
			p.finishOp()
		}
		return true, nil
	}
	return false, f.failf(i, "unknown op kind %d", op.Kind)
}

// stepSendRecv advances the full-duplex op: one outgoing and one incoming
// wavelet per cycle, using both directions of the bidirectional ramp.
func (sh *shardState) stepSendRecv(i int32, op *Op) (bool, error) {
	f := sh.f
	p := &f.procs[i]
	progress := false
	// Outbound side: stream data then the trailing control.
	if !p.sDone {
		switch {
		case p.elem < op.N:
			if sh.pushRamp(i, Wavelet{Val: p.acc[op.Off+p.elem], Color: op.OutColor}) {
				p.elem++
				progress = true
			}
		default:
			if sh.pushRamp(i, Wavelet{Color: op.OutColor, Ctl: true}) {
				p.sDone = true
				progress = true
			}
		}
	}
	// Inbound side.
	notReady := false
	if !p.rDone {
		w, st := sh.popInbox(i, op.Color)
		switch st {
		case popOK:
			if w.Ctl {
				if p.rElem != op.N2 {
					return false, f.failf(i, "%v: control after %d/%d elements", op.Kind, p.rElem, op.N2)
				}
				p.rDone = true
			} else {
				if p.rElem >= op.N2 {
					return false, f.failf(i, "%v: data wavelet beyond %d elements", op.Kind, op.N2)
				}
				if op.Kind == OpSendRecvReduce {
					p.acc[op.Off2+p.rElem] = op.Reduce.Apply(p.acc[op.Off2+p.rElem], w.Val)
				} else {
					p.acc[op.Off2+p.rElem] = w.Val
				}
				p.rElem++
				p.received++
			}
			progress = true
		case popNotReady:
			notReady = true
		}
	}
	if p.sDone && p.rDone {
		p.finishOp()
		return true, nil
	}
	// Stay scheduled while anything moved or is in ramp transit; sleep
	// otherwise (woken by a ramp-queue pop or an inbox push).
	return progress || notReady, nil
}

func (p *proc) finishOp() {
	p.opIdx++
	p.elem = 0
	p.ctlPhase = false
	p.rElem = 0
	p.rDone = false
	p.sDone = false
	p.actLeft = 0
	p.actDone = false
}

// activationStall implements the per-transfer task wake-up charge: once
// the op's first wavelet is available, TaskActivation cycles elapse
// before the processor consumes anything. Returns (stay, gated): gated
// means the caller must not consume this cycle.
func (sh *shardState) activationStall(i int32, color mesh.Color) (bool, bool) {
	f := sh.f
	p := &f.procs[i]
	if f.opt.TaskActivation <= 0 || p.actDone {
		return false, false
	}
	q := f.inboxQ(i, color)
	if q == nil || q.visLen() == 0 {
		return false, true // nothing arrived yet: sleep until a push
	}
	if e, _ := q.peek(); e.readyAt > f.cycle {
		return true, true // in ramp transit: retry next cycle
	}
	if p.actLeft == 0 {
		p.actLeft = f.opt.TaskActivation
	}
	p.actLeft--
	if p.actLeft == 0 {
		p.actDone = true
	}
	return true, true
}

func (f *Fabric) failf(i int32, format string, args ...any) error {
	return fmt.Errorf("fabric: PE %v at cycle %d: %s", f.coords[i], f.cycle, fmt.Sprintf(format, args...))
}

// describeStall summarises blocked processors and queued wavelets for
// deadlock diagnostics.
func (f *Fabric) describeStall() string {
	var b strings.Builder
	blocked := 0
	queued := int64(0)
	for si := range f.shards {
		queued += f.shards[si].qPushes - f.shards[si].qPops
	}
	for i := range f.procs {
		p := &f.procs[i]
		if p.done {
			continue
		}
		if blocked < 8 {
			if p.opIdx < len(p.ops) {
				op := p.ops[p.opIdx]
				fmt.Fprintf(&b, "PE %v blocked on op %d %v color=%d elem=%d/%d inbox=%d; ",
					f.coords[i], p.opIdx, op.Kind, op.Color, p.elem, op.N, p.inboxTotal)
			} else {
				fmt.Fprintf(&b, "PE %v drained ops, inbox=%d; ", f.coords[i], p.inboxTotal)
			}
		}
		blocked++
	}
	fmt.Fprintf(&b, "%d blocked PEs, %d queued wavelets", blocked, queued)
	return b.String()
}
