package fabric

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mesh"
)

// Options configure the physical parameters of the simulated fabric.
type Options struct {
	// TR is the ramp latency in cycles between a processor and its router,
	// in each direction. The paper measures it to be 2 on the WSE-2; zero
	// selects that default, and a negative value selects a literal
	// zero-latency ramp (useful for ablations).
	TR int
	// QueueCap is the per-color per-direction router input queue depth.
	// Hardware queues are shallow; the default of 4 reproduces tight
	// backpressure while letting single-cycle pipelines stream.
	QueueCap int
	// MaxCycles aborts runs that exceed this cycle count (0 = generous
	// default).
	MaxCycles int64
	// ClockSkewMax, when positive, gives each PE a deterministic
	// pseudo-random local clock offset in [0, ClockSkewMax). The paper's
	// PEs have independent clocks (§8.1); the measurement methodology of
	// §8.3 exists to calibrate this away.
	ClockSkewMax int64
	// ThermalNoopRate, when positive, is the per-cycle probability that a
	// processor inserts a no-op, modelling the wafer's thermal throttling
	// (§8.1: "PEs may insert no-ops to regulate thermal stress").
	ThermalNoopRate float64
	// TaskActivation charges the given number of cycles when a receive
	// op consumes its first wavelet, modelling the dataflow task wake-up
	// ("tasks can be activated by wavelets", §2.2). The paper observed
	// this overhead makes the measured Star slower than predicted
	// because it pays per incoming transfer (§8.5). Default 0 (the
	// idealised fabric the paper's model describes).
	TaskActivation int
	// Seed drives the deterministic RNG used for clock skew and thermal
	// no-ops.
	Seed uint64
	// Tracer, when non-nil, records fabric events (wavelet movement,
	// config advancement, op completion) for debugging.
	Tracer *Tracer
}

// DefaultTR is the ramp latency the paper determined for the WSE-2.
const DefaultTR = 2

func (o Options) withDefaults() Options {
	if o.TR == 0 {
		o.TR = DefaultTR
	}
	if o.TR < 0 {
		o.TR = 0
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 4
	}
	if o.MaxCycles <= 0 {
		o.MaxCycles = 1 << 34
	}
	return o
}

// colorState is a router's runtime state for one color: the configuration
// list with the active index and remaining absorb count, and the input
// queue per arrival direction.
type colorState struct {
	configs []RouterConfig
	idx     int
	times   int
	queues  [mesh.NumDirections]waveQueue
	queued  int
	color   mesh.Color
	router  int32
	inList  bool
}

func (cs *colorState) advance() {
	if cs.times == 0 { // final configuration: absorbs controls forever
		return
	}
	cs.times--
	if cs.times == 0 && cs.idx < len(cs.configs)-1 {
		cs.idx++
		cs.times = cs.configs[cs.idx].Times
	}
}

type router struct {
	colors  [mesh.NumColors]*colorState
	outUsed [mesh.NumDirections]int64 // cycle+1 stamp of the last wire use
}

// proc is a processor's runtime state.
type proc struct {
	ops        []Op
	opIdx      int
	elem       int
	ctlPhase   bool // data elements sent/consumed; control phase pending
	rElem      int  // inbound progress of full-duplex ops
	rDone      bool
	sDone      bool
	actLeft    int  // remaining task-activation stall cycles
	actDone    bool // activation already paid for the current op
	acc        []float32
	inbox      [mesh.NumColors]*waveQueue
	inboxTotal int
	latchVal   float32
	latchCtl   bool
	latchFull  bool
	clock      []int64
	skew       int64
	rng        uint64
	received   int64
	done       bool
	inList     bool
}

func (p *proc) inboxFor(c mesh.Color) *waveQueue {
	q := p.inbox[c]
	if q == nil {
		q = &waveQueue{}
		p.inbox[c] = q
	}
	return q
}

// Stats aggregates fabric-level counters that correspond directly to the
// paper's cost metrics: Hops is the measured energy E (router-to-router
// wavelet moves), MaxReceived the measured contention C (data wavelets
// consumed by the busiest processor), RampMoves the traffic over processor
// ramps, Noops the thermal no-ops inserted.
type Stats struct {
	Hops        int64
	RampMoves   int64
	MaxReceived int64
	MaxQueueLen int
	Noops       int64
}

// Result reports a completed run.
type Result struct {
	// Cycles is the total cycle count until every processor finished and
	// the network drained.
	Cycles int64
	// Acc maps each programmed PE to its final accumulator contents.
	Acc map[mesh.Coord][]float32
	// Clocks maps each PE to its sampled local-clock slots.
	Clocks map[mesh.Coord][]int64
	// Stats holds the measured cost metrics.
	Stats Stats
}

// Fabric is an instantiated simulation of a Spec. The engine is
// cycle-stepped but event-scheduled: routers and processors sleep while
// blocked and are woken by exactly the fabric events (queue pushes and
// pops) that can unblock them, so simulation work is proportional to
// wavelet movement (the paper's energy metric) rather than PEs×cycles.
type Fabric struct {
	opt     Options
	width   int
	height  int
	coords  []mesh.Coord
	index   map[mesh.Coord]int
	routers []router
	procs   []proc
	cycle   int64
	stats   Stats

	curCS  []*colorState
	nextCS []*colorState
	curP   []int32
	nextP  []int32

	pendingProcs int
	queuedTotal  int
}

// New instantiates a fabric for the given program. The spec is validated
// first; routing tables and processor state are laid out densely over the
// programmed PEs.
func New(s *Spec, opt Options) (*Fabric, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	coords := make([]mesh.Coord, 0, len(s.PEs))
	for c := range s.PEs {
		coords = append(coords, c)
	}
	sort.Slice(coords, func(i, j int) bool {
		if coords[i].Y != coords[j].Y {
			return coords[i].Y < coords[j].Y
		}
		return coords[i].X < coords[j].X
	})
	f := &Fabric{
		opt:     opt,
		width:   s.Width,
		height:  s.Height,
		coords:  coords,
		index:   make(map[mesh.Coord]int, len(coords)),
		routers: make([]router, len(coords)),
		procs:   make([]proc, len(coords)),
	}
	for i, c := range coords {
		f.index[c] = i
	}
	rng := opt.Seed | 1
	for i, c := range coords {
		pe := s.PEs[c]
		r := &f.routers[i]
		for color, cfgs := range pe.Configs {
			r.colors[color] = &colorState{
				configs: cfgs,
				times:   cfgs[0].Times,
				color:   color,
				router:  int32(i),
			}
		}
		p := &f.procs[i]
		p.ops = pe.Ops
		p.acc = append([]float32(nil), pe.Init...)
		// Ops address acc[Off..Off+N); make sure the buffer exists even
		// when the PE contributed no input of its own.
		for _, op := range pe.Ops {
			need := 0
			switch op.Kind {
			case OpSend, OpRecvReduce, OpRecvReduceSend, OpRecvStore:
				need = op.Off + op.N
			case OpSendRecvReduce, OpSendRecvStore:
				need = op.Off + op.N
				if n2 := op.Off2 + op.N2; n2 > need {
					need = n2
				}
			}
			if need > len(p.acc) {
				p.acc = append(p.acc, make([]float32, need-len(p.acc))...)
			}
		}
		p.clock = make([]int64, pe.ClockSlots)
		rng = splitmix(rng)
		p.rng = rng
		if opt.ClockSkewMax > 0 {
			rng = splitmix(rng)
			p.skew = int64(rng % uint64(opt.ClockSkewMax))
		}
		if len(p.ops) == 0 {
			p.done = true
		} else {
			f.pendingProcs++
			f.wakeProc(int32(i))
		}
	}
	f.curP, f.nextP = f.nextP, f.curP
	f.curCS, f.nextCS = f.nextCS, f.curCS
	return f, nil
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (f *Fabric) neighbor(i int, d mesh.Direction) int {
	n, ok := f.index[f.coords[i].Add(d)]
	if !ok {
		return -1
	}
	return n
}

// wakeCS schedules a router color state for the next cycle.
func (f *Fabric) wakeCS(cs *colorState) {
	if cs == nil || cs.inList {
		return
	}
	cs.inList = true
	f.nextCS = append(f.nextCS, cs)
}

// wakeProc schedules a processor for the next cycle.
func (f *Fabric) wakeProc(i int32) {
	p := &f.procs[i]
	if p.inList || p.done {
		return
	}
	p.inList = true
	f.nextP = append(f.nextP, i)
}

// Run executes the program to completion and returns the result. It fails
// with a diagnostic error on deadlock (all units blocked while work
// remains), protocol violations (control wavelets out of place), or cycle
// overrun.
func (f *Fabric) Run() (*Result, error) {
	for {
		if f.pendingProcs == 0 && f.queuedTotal == 0 {
			break
		}
		if len(f.curCS) == 0 && len(f.curP) == 0 {
			return nil, fmt.Errorf("fabric: deadlock at cycle %d; %s", f.cycle, f.describeStall())
		}
		if f.cycle >= f.opt.MaxCycles {
			return nil, fmt.Errorf("fabric: exceeded %d cycles; %s", f.opt.MaxCycles, f.describeStall())
		}
		for _, cs := range f.curCS {
			cs.inList = false
			if f.stepColor(cs) {
				f.wakeCS(cs)
			}
		}
		for _, pi := range f.curP {
			p := &f.procs[pi]
			p.inList = false
			stay, err := f.stepProc(pi)
			if err != nil {
				return nil, err
			}
			if stay {
				f.wakeProc(pi)
			}
		}
		f.curCS = f.curCS[:0]
		f.curP = f.curP[:0]
		f.curCS, f.nextCS = f.nextCS, f.curCS
		f.curP, f.nextP = f.nextP, f.curP
		f.cycle++
	}
	res := &Result{
		Cycles: f.cycle,
		Acc:    make(map[mesh.Coord][]float32, len(f.coords)),
		Clocks: make(map[mesh.Coord][]int64, len(f.coords)),
		Stats:  f.stats,
	}
	for i, c := range f.coords {
		if n := f.procs[i].inboxTotal; n > 0 {
			return nil, fmt.Errorf("fabric: PE %v finished with %d unconsumed inbox wavelets", c, n)
		}
		res.Acc[c] = f.procs[i].acc
		if len(f.procs[i].clock) > 0 {
			res.Clocks[c] = f.procs[i].clock
		}
		if f.procs[i].received > res.Stats.MaxReceived {
			res.Stats.MaxReceived = f.procs[i].received
		}
	}
	return res, nil
}

// stepColor attempts to route the head wavelet of one color at one router.
// It returns true when the color state should stay scheduled (it moved a
// wavelet and has more, or it is waiting on a wire or on a ramp-transit
// delay); it returns false when the state goes to sleep, to be woken by a
// push or a downstream pop.
func (f *Fabric) stepColor(cs *colorState) bool {
	if cs.queued == 0 {
		return false
	}
	cfg := cs.configs[cs.idx]
	q := &cs.queues[cfg.Accept]
	e, ok := q.peek()
	if !ok {
		return false // wavelets queued on non-accepted sides; a config advance will wake us
	}
	if e.readyAt > f.cycle {
		return true // in ramp/link transit: retry next cycle
	}
	i := int(cs.router)
	r := &f.routers[i]
	// Check every forward target; multicast moves atomically or not at all.
	for d := mesh.Direction(0); d < mesh.NumDirections; d++ {
		if !cfg.Forward.Has(d) {
			continue
		}
		if r.outUsed[d] == f.cycle+1 {
			return true // wire contention: retry next cycle
		}
		if d == mesh.Ramp {
			if f.procs[i].inboxFor(cs.color).len() >= f.opt.QueueCap {
				return false // sleep until the processor drains its inbox
			}
			continue
		}
		nb := f.neighbor(i, d)
		if nb < 0 {
			return false // off-grid (caught by Validate; defensive)
		}
		ncs := f.routers[nb].colors[cs.color]
		if ncs == nil {
			return false // unroutable color downstream: surfaces as deadlock
		}
		if !ncs.queues[d.Opposite()].hasSpace(f.opt.QueueCap) {
			return false // sleep until downstream pops
		}
	}
	q.pop()
	cs.queued--
	f.queuedTotal--
	if f.opt.Tracer != nil {
		f.opt.Tracer.record(TraceEvent{Cycle: f.cycle, PE: f.coords[i], Kind: EvRoute, Color: cs.color, Forward: cfg.Forward, Ctl: e.w.Ctl})
	}
	// Popping frees space: wake whoever fills this queue.
	if cfg.Accept == mesh.Ramp {
		f.wakeProc(cs.router)
	} else if up := f.neighbor(i, cfg.Accept); up >= 0 {
		f.wakeCS(f.routers[up].colors[cs.color])
	}
	for d := mesh.Direction(0); d < mesh.NumDirections; d++ {
		if !cfg.Forward.Has(d) {
			continue
		}
		r.outUsed[d] = f.cycle + 1
		if d == mesh.Ramp {
			p := &f.procs[i]
			p.inboxFor(cs.color).push(waveEntry{w: e.w, readyAt: f.cycle + int64(f.opt.TR)}, f.opt.QueueCap)
			p.inboxTotal++
			f.stats.RampMoves++
			f.wakeProc(cs.router)
			if f.opt.Tracer != nil {
				f.opt.Tracer.record(TraceEvent{Cycle: f.cycle, PE: f.coords[i], Kind: EvDeliver, Color: cs.color, Ctl: e.w.Ctl})
			}
			continue
		}
		nb := f.neighbor(i, d)
		ncs := f.routers[nb].colors[cs.color]
		ncs.queues[d.Opposite()].push(waveEntry{w: e.w, readyAt: f.cycle + 1}, f.opt.QueueCap)
		ncs.queued++
		f.queuedTotal++
		f.stats.Hops++
		if l := ncs.queues[d.Opposite()].len(); l > f.stats.MaxQueueLen {
			f.stats.MaxQueueLen = l
		}
		f.wakeCS(ncs)
	}
	if e.w.Ctl {
		cs.advance()
		if f.opt.Tracer != nil {
			f.opt.Tracer.record(TraceEvent{Cycle: f.cycle, PE: f.coords[i], Kind: EvAdvance, Color: cs.color, Ctl: true})
		}
	}
	return cs.queued > 0
}

// pushRamp injects a wavelet from processor i into its router; the wavelet
// becomes routable T_R cycles after the send instruction issues.
func (f *Fabric) pushRamp(i int32, w Wavelet) bool {
	cs := f.routers[i].colors[w.Color]
	if cs == nil {
		return false
	}
	if !cs.queues[mesh.Ramp].push(waveEntry{w: w, readyAt: f.cycle + int64(f.opt.TR)}, f.opt.QueueCap) {
		return false
	}
	cs.queued++
	f.queuedTotal++
	f.stats.RampMoves++
	f.wakeCS(cs)
	if f.opt.Tracer != nil {
		f.opt.Tracer.record(TraceEvent{Cycle: f.cycle, PE: f.coords[i], Kind: EvInject, Color: w.Color, Ctl: w.Ctl})
	}
	return true
}

type popState uint8

const (
	popEmpty popState = iota
	popNotReady
	popOK
)

func (f *Fabric) popInbox(i int32, c mesh.Color) (Wavelet, popState) {
	p := &f.procs[i]
	q := p.inbox[c]
	if q == nil || q.len() == 0 {
		return Wavelet{}, popEmpty
	}
	e, _ := q.peek()
	if e.readyAt > f.cycle {
		return Wavelet{}, popNotReady
	}
	q.pop()
	p.inboxTotal--
	// Draining the inbox may unblock the router's ramp delivery.
	f.wakeCS(f.routers[i].colors[c])
	if f.opt.Tracer != nil {
		f.opt.Tracer.record(TraceEvent{Cycle: f.cycle, PE: f.coords[i], Kind: EvConsume, Color: c, Ctl: e.w.Ctl})
	}
	return e.w, popOK
}

// stepProc advances one processor by one cycle. It returns whether the
// processor should stay scheduled next cycle.
func (f *Fabric) stepProc(i int32) (bool, error) {
	p := &f.procs[i]
	if p.done {
		return false, nil
	}
	// Zero-cost ops (clock samples) execute immediately in program order.
	for p.opIdx < len(p.ops) && p.ops[p.opIdx].Kind == OpSampleClock {
		op := p.ops[p.opIdx]
		p.clock[op.Slot] = f.cycle + p.skew
		p.opIdx++
	}
	if p.opIdx >= len(p.ops) {
		if p.inboxTotal > 0 {
			return false, f.failf(i, "program finished with %d undelivered inbox wavelets", p.inboxTotal)
		}
		p.done = true
		f.pendingProcs--
		return false, nil
	}
	if f.opt.ThermalNoopRate > 0 {
		p.rng = splitmix(p.rng)
		if float64(p.rng%(1<<20))/float64(1<<20) < f.opt.ThermalNoopRate {
			f.stats.Noops++
			return true, nil
		}
	}
	op := &p.ops[p.opIdx]
	switch op.Kind {
	case OpSend:
		if !p.ctlPhase {
			if f.pushRamp(i, Wavelet{Val: p.acc[op.Off+p.elem], Color: op.Color}) {
				p.elem++
				if p.elem == op.N {
					p.ctlPhase = true
				}
				return true, nil
			}
			return false, nil // ramp full: woken by ramp-queue pop
		}
		if f.pushRamp(i, Wavelet{Color: op.Color, Ctl: true}) {
			p.finishOp()
			return true, nil
		}
		return false, nil

	case OpSendTrigger:
		if f.pushRamp(i, Wavelet{Color: op.Color}) {
			p.finishOp()
			return true, nil
		}
		return false, nil

	case OpRecvReduce, OpRecvStore:
		if stay, gated := f.activationStall(i, op.Color); gated {
			return stay, nil
		}
		w, st := f.popInbox(i, op.Color)
		if st == popEmpty {
			return false, nil
		}
		if st == popNotReady {
			return true, nil
		}
		if w.Ctl {
			if p.elem != op.N {
				return false, f.failf(i, "%v: control after %d/%d elements", op.Kind, p.elem, op.N)
			}
			p.finishOp()
			return true, nil
		}
		if p.elem >= op.N {
			return false, f.failf(i, "%v: data wavelet beyond %d elements", op.Kind, op.N)
		}
		if op.Kind == OpRecvReduce {
			p.acc[op.Off+p.elem] = op.Reduce.Apply(p.acc[op.Off+p.elem], w.Val)
		} else {
			p.acc[op.Off+p.elem] = w.Val
		}
		p.elem++
		p.received++
		return true, nil

	case OpSendRecvReduce, OpSendRecvStore:
		return f.stepSendRecv(i, op)

	case OpRecvReduceSend:
		progress := false
		if p.latchFull {
			if f.pushRamp(i, Wavelet{Val: p.latchVal, Color: op.OutColor, Ctl: p.latchCtl}) {
				wasCtl := p.latchCtl
				p.latchFull = false
				p.latchCtl = false
				progress = true
				if wasCtl {
					p.finishOp()
					return true, nil
				}
			} else if p.latchCtl || p.elem == op.N {
				// Nothing left to receive; blocked purely on the ramp.
				return false, nil
			}
		}
		if !p.latchFull {
			if stay, gated := f.activationStall(i, op.Color); gated {
				return stay || progress, nil
			}
			w, st := f.popInbox(i, op.Color)
			switch st {
			case popOK:
				if w.Ctl {
					if p.elem != op.N {
						return false, f.failf(i, "recv-reduce-send: control after %d/%d elements", p.elem, op.N)
					}
					p.latchFull = true
					p.latchCtl = true
				} else {
					if p.elem >= op.N {
						return false, f.failf(i, "recv-reduce-send: data wavelet beyond %d elements", op.N)
					}
					v := op.Reduce.Apply(p.acc[op.Off+p.elem], w.Val)
					p.acc[op.Off+p.elem] = v
					p.latchVal = v
					p.latchFull = true
					p.elem++
					p.received++
				}
				return true, nil
			case popNotReady:
				return true, nil
			case popEmpty:
				// Stay scheduled if the latch made progress or still holds
				// data (it will need the ramp next cycle); otherwise sleep
				// until the inbox fills.
				return progress || p.latchFull, nil
			}
		}
		return progress, nil

	case OpRecvTrigger:
		w, st := f.popInbox(i, op.Color)
		if st == popEmpty {
			return false, nil
		}
		if st == popNotReady {
			return true, nil
		}
		if w.Ctl {
			return false, f.failf(i, "recv-trigger: unexpected control wavelet")
		}
		p.finishOp()
		return true, nil

	case OpBusyWrite:
		p.elem++
		if p.elem >= op.N {
			p.finishOp()
		}
		return true, nil
	}
	return false, f.failf(i, "unknown op kind %d", op.Kind)
}

// stepSendRecv advances the full-duplex op: one outgoing and one incoming
// wavelet per cycle, using both directions of the bidirectional ramp.
func (f *Fabric) stepSendRecv(i int32, op *Op) (bool, error) {
	p := &f.procs[i]
	progress := false
	// Outbound side: stream data then the trailing control.
	if !p.sDone {
		switch {
		case p.elem < op.N:
			if f.pushRamp(i, Wavelet{Val: p.acc[op.Off+p.elem], Color: op.OutColor}) {
				p.elem++
				progress = true
			}
		default:
			if f.pushRamp(i, Wavelet{Color: op.OutColor, Ctl: true}) {
				p.sDone = true
				progress = true
			}
		}
	}
	// Inbound side.
	notReady := false
	if !p.rDone {
		w, st := f.popInbox(i, op.Color)
		switch st {
		case popOK:
			if w.Ctl {
				if p.rElem != op.N2 {
					return false, f.failf(i, "%v: control after %d/%d elements", op.Kind, p.rElem, op.N2)
				}
				p.rDone = true
			} else {
				if p.rElem >= op.N2 {
					return false, f.failf(i, "%v: data wavelet beyond %d elements", op.Kind, op.N2)
				}
				if op.Kind == OpSendRecvReduce {
					p.acc[op.Off2+p.rElem] = op.Reduce.Apply(p.acc[op.Off2+p.rElem], w.Val)
				} else {
					p.acc[op.Off2+p.rElem] = w.Val
				}
				p.rElem++
				p.received++
			}
			progress = true
		case popNotReady:
			notReady = true
		}
	}
	if p.sDone && p.rDone {
		p.finishOp()
		return true, nil
	}
	// Stay scheduled while anything moved or is in ramp transit; sleep
	// otherwise (woken by a ramp-queue pop or an inbox push).
	return progress || notReady, nil
}

func (p *proc) finishOp() {
	p.opIdx++
	p.elem = 0
	p.ctlPhase = false
	p.rElem = 0
	p.rDone = false
	p.sDone = false
	p.actLeft = 0
	p.actDone = false
}

// activationStall implements the per-transfer task wake-up charge: once
// the op's first wavelet is available, TaskActivation cycles elapse
// before the processor consumes anything. Returns (stay, gated): gated
// means the caller must not consume this cycle.
func (f *Fabric) activationStall(i int32, color mesh.Color) (bool, bool) {
	p := &f.procs[i]
	if f.opt.TaskActivation <= 0 || p.actDone {
		return false, false
	}
	q := p.inbox[color]
	if q == nil || q.len() == 0 {
		return false, true // nothing arrived yet: sleep until a push
	}
	if e, _ := q.peek(); e.readyAt > f.cycle {
		return true, true // in ramp transit: retry next cycle
	}
	if p.actLeft == 0 {
		p.actLeft = f.opt.TaskActivation
	}
	p.actLeft--
	if p.actLeft == 0 {
		p.actDone = true
	}
	return true, true
}

func (f *Fabric) failf(i int32, format string, args ...any) error {
	return fmt.Errorf("fabric: PE %v at cycle %d: %s", f.coords[i], f.cycle, fmt.Sprintf(format, args...))
}

// describeStall summarises blocked processors and queued wavelets for
// deadlock diagnostics.
func (f *Fabric) describeStall() string {
	var b strings.Builder
	blocked := 0
	for i := range f.procs {
		p := &f.procs[i]
		if p.done {
			continue
		}
		if blocked < 8 {
			if p.opIdx < len(p.ops) {
				op := p.ops[p.opIdx]
				fmt.Fprintf(&b, "PE %v blocked on op %d %v color=%d elem=%d/%d inbox=%d; ",
					f.coords[i], p.opIdx, op.Kind, op.Color, p.elem, op.N, p.inboxTotal)
			} else {
				fmt.Fprintf(&b, "PE %v drained ops, inbox=%d; ", f.coords[i], p.inboxTotal)
			}
		}
		blocked++
	}
	fmt.Fprintf(&b, "%d blocked PEs, %d queued wavelets", blocked, f.queuedTotal)
	return b.String()
}
