// Package planstore persists compiled plans: a versioned, deterministic
// binary codec for plan.Plan and a content-addressed on-disk store of
// encoded plans. Together they close the gap PR 1's in-memory cache left
// open — every serving process still paid full compile cost on startup —
// by letting a staging run compile the workload once and a serving fleet
// warm its caches from disk (Session.Warm) before taking traffic.
//
// The codec is deterministic end to end: the spec codec emits PEs and
// router colors in sorted order, plans carry canonical options, and every
// integer and float has exactly one encoding. Encoding the same logical
// plan in any process therefore yields identical bytes, and the SHA-256
// of those bytes doubles as the plan's durable address — the CID-style
// content addressing of IPFS blockstores applied to fabric programs. A
// decoded plan replays bit-identically to the freshly compiled one: same
// per-PE results, same cycle counts, same RNG chain.
package planstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/mesh"
	"repro/internal/plan"
)

// FormatVersion is the current plan blob layout version. Decoders reject
// blobs from future versions; layout changes that cannot be decoded under
// the old reader must bump it.
const FormatVersion = 1

// magic opens every encoded plan. The trailing newline and NUL catch
// text-mode corruption the way PNG's magic does.
var magic = [8]byte{'W', 'S', 'E', 'P', 'L', 'A', 'N', 0}

const (
	// endianLittle marks the byte order of the fixed-width fields. The
	// codec always writes little-endian; the marker makes the file
	// self-describing rather than making the order configurable.
	endianLittle = 0x4C // 'L'

	// headerLen is magic(8) + version(2) + endian(1) + flags(1) +
	// payload length(8) + SHA-256(32).
	headerLen = 8 + 2 + 1 + 1 + 8 + sha256.Size
)

// Encode serialises a compiled plan into its self-describing binary form
// and returns the encoding together with the hex SHA-256 of the payload —
// the plan's content address. Encoding is deterministic: the same plan
// always yields the same bytes and therefore the same address.
func Encode(p *plan.Plan) ([]byte, string, error) {
	specBytes, err := p.Spec.MarshalBinary()
	if err != nil {
		return nil, "", fmt.Errorf("planstore: encode spec: %w", err)
	}
	e := &enc{}
	putKey(e, p.Key)
	e.str(string(p.Kind))
	e.str(string(p.Alg))
	e.str(string(p.Alg2D))
	e.varint(int64(p.P))
	e.varint(int64(p.Width))
	e.varint(int64(p.Height))
	e.varint(int64(p.B))
	e.byte(byte(p.Op))
	putOptions(e, p.Opt)
	e.f64(p.Predicted)
	e.bytes(specBytes)
	putTree(e, p.Tree)
	putTree(e, p.RowTree)
	putTree(e, p.ColTree)
	e.uvarint(uint64(len(p.Colors)))
	for _, c := range p.Colors {
		e.byte(byte(c))
	}

	payload := e.buf
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, headerLen+len(payload))
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint16(out, FormatVersion)
	out = append(out, endianLittle, 0)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, sum[:]...)
	out = append(out, payload...)
	return out, hex.EncodeToString(sum[:]), nil
}

// Decode reconstructs a plan from its encoded form, returning the plan
// and its verified content address. The header is validated, the payload
// is hashed and compared against the recorded digest before any field is
// trusted, and the decoded spec is structurally re-validated, so a
// tampered or truncated blob is rejected rather than replayed.
func Decode(data []byte) (*plan.Plan, string, error) {
	payload, sum, err := checkHeader(data)
	if err != nil {
		return nil, "", err
	}
	d := &dec{buf: payload}
	key, err := getKey(d)
	if err != nil {
		return nil, "", err
	}
	p := &plan.Plan{Key: key}
	p.Kind = plan.Kind(d.str())
	p.Alg = core.Pattern(d.str())
	p.Alg2D = core.Pattern2D(d.str())
	p.P = int(d.varint())
	p.Width = int(d.varint())
	p.Height = int(d.varint())
	p.B = int(d.varint())
	p.Op = fabric.ReduceOp(d.byte())
	p.Opt = getOptions(d)
	p.Predicted = d.f64()
	specBytes := d.bytes()
	if d.err != nil {
		return nil, "", fmt.Errorf("planstore: decode: %v", d.err)
	}
	p.Spec = fabric.NewSpec(1, 1)
	if err := p.Spec.UnmarshalBinary(specBytes); err != nil {
		return nil, "", fmt.Errorf("planstore: decode: %w", err)
	}
	if p.Tree, err = getTree(d); err != nil {
		return nil, "", err
	}
	if p.RowTree, err = getTree(d); err != nil {
		return nil, "", err
	}
	if p.ColTree, err = getTree(d); err != nil {
		return nil, "", err
	}
	nc := int(d.uvarint())
	if d.err == nil && nc > 0 {
		if nc > d.remaining() || nc > mesh.NumColors {
			return nil, "", fmt.Errorf("planstore: decode: %d colors", nc)
		}
		p.Colors = make([]mesh.Color, nc)
		for i := range p.Colors {
			p.Colors[i] = mesh.Color(d.byte())
		}
	}
	if d.err != nil {
		return nil, "", fmt.Errorf("planstore: decode: %v", d.err)
	}
	if d.remaining() != 0 {
		return nil, "", fmt.Errorf("planstore: decode: %d trailing payload bytes", d.remaining())
	}
	if err := p.Spec.Validate(); err != nil {
		return nil, "", fmt.Errorf("planstore: decoded spec invalid: %w", err)
	}
	return p, hex.EncodeToString(sum), nil
}

// DecodeKey reads just the plan key from an encoded blob, after header
// and content-hash verification but without decoding the plan body. The
// key section leads the payload exactly so the store can rebuild its
// index from a directory of blobs without paying a full decode per blob —
// and corrupt blobs are caught (and quarantined) at open time rather than
// on the serving path.
func DecodeKey(data []byte) (plan.Key, error) {
	payload, _, err := checkHeader(data)
	if err != nil {
		return plan.Key{}, err
	}
	return getKey(&dec{buf: payload})
}

// checkHeader validates the fixed header and returns the payload slice
// and the recorded SHA-256 after verifying it matches the payload.
func checkHeader(data []byte) (payload, sum []byte, err error) {
	if len(data) < headerLen {
		return nil, nil, fmt.Errorf("planstore: %d bytes is shorter than the %d-byte header", len(data), headerLen)
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return nil, nil, fmt.Errorf("planstore: bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint16(data[8:10]); v != FormatVersion {
		return nil, nil, fmt.Errorf("planstore: format version %d, this build reads %d", v, FormatVersion)
	}
	if data[10] != endianLittle {
		return nil, nil, fmt.Errorf("planstore: unknown endianness marker %#x", data[10])
	}
	if data[11] != 0 {
		return nil, nil, fmt.Errorf("planstore: reserved flags byte %#x is set", data[11])
	}
	plen := binary.LittleEndian.Uint64(data[12:20])
	if plen != uint64(len(data)-headerLen) {
		return nil, nil, fmt.Errorf("planstore: payload length %d, file carries %d", plen, len(data)-headerLen)
	}
	sum = data[20:headerLen]
	payload = data[headerLen:]
	if got := sha256.Sum256(payload); !bytes.Equal(got[:], sum) {
		return nil, nil, fmt.Errorf("planstore: content hash mismatch: blob is corrupt or tampered")
	}
	return payload, sum, nil
}

func putKey(e *enc, k plan.Key) {
	e.str(string(k.Kind))
	e.str(string(k.Alg))
	e.str(string(k.Alg2D))
	e.varint(int64(k.P))
	e.varint(int64(k.Width))
	e.varint(int64(k.Height))
	e.varint(int64(k.B))
	e.byte(byte(k.Op))
	e.varint(int64(k.Opt.TR))
	e.varint(int64(k.Opt.QueueCap))
	e.varint(k.Opt.MaxCycles)
	e.varint(k.Opt.ClockSkewMax)
	e.f64(k.Opt.ThermalNoopRate)
	e.varint(int64(k.Opt.TaskActivation))
	e.u64(k.Opt.Seed)
	e.varint(int64(k.Opt.Shards))
}

func getKey(d *dec) (plan.Key, error) {
	k := plan.Key{
		Kind:   plan.Kind(d.str()),
		Alg:    core.Pattern(d.str()),
		Alg2D:  core.Pattern2D(d.str()),
		P:      int(d.varint()),
		Width:  int(d.varint()),
		Height: int(d.varint()),
		B:      int(d.varint()),
		Op:     fabric.ReduceOp(d.byte()),
	}
	k.Opt = plan.OptKey{
		TR:              int(d.varint()),
		QueueCap:        int(d.varint()),
		MaxCycles:       d.varint(),
		ClockSkewMax:    d.varint(),
		ThermalNoopRate: d.f64(),
		TaskActivation:  int(d.varint()),
		Seed:            d.u64(),
		Shards:          int(d.varint()),
	}
	if d.err != nil {
		return plan.Key{}, fmt.Errorf("planstore: decode key: %v", d.err)
	}
	return k, nil
}

func putOptions(e *enc, o fabric.Options) {
	e.varint(int64(o.TR))
	e.varint(int64(o.QueueCap))
	e.varint(o.MaxCycles)
	e.varint(o.ClockSkewMax)
	e.f64(o.ThermalNoopRate)
	e.varint(int64(o.TaskActivation))
	e.u64(o.Seed)
	e.varint(int64(o.Shards))
	// The Tracer is a process-local debug attachment; it does not persist.
}

func getOptions(d *dec) fabric.Options {
	return fabric.Options{
		TR:              int(d.varint()),
		QueueCap:        int(d.varint()),
		MaxCycles:       d.varint(),
		ClockSkewMax:    d.varint(),
		ThermalNoopRate: d.f64(),
		TaskActivation:  int(d.varint()),
		Seed:            d.u64(),
		Shards:          int(d.varint()),
	}
}

func putTree(e *enc, t comm.Tree) {
	e.uvarint(uint64(len(t.Parent)))
	for _, v := range t.Parent {
		e.varint(int64(v))
	}
}

func getTree(d *dec) (comm.Tree, error) {
	n := int(d.uvarint())
	if d.err != nil || n < 0 || n > d.remaining() {
		return comm.Tree{}, fmt.Errorf("planstore: decode tree: truncated")
	}
	if n == 0 {
		return comm.Tree{}, nil
	}
	t := comm.Tree{Parent: make([]int, n)}
	for i := range t.Parent {
		t.Parent[i] = int(d.varint())
	}
	if d.err != nil {
		return comm.Tree{}, fmt.Errorf("planstore: decode tree: %v", d.err)
	}
	if t.Parent[0] != -1 {
		return comm.Tree{}, fmt.Errorf("planstore: decode tree: root parent %d", t.Parent[0])
	}
	for v := 1; v < n; v++ {
		if t.Parent[v] < 0 || t.Parent[v] >= n {
			return comm.Tree{}, fmt.Errorf("planstore: decode tree: vertex %d has parent %d", v, t.Parent[v])
		}
	}
	return t, nil
}

// enc appends primitive values to a growing payload buffer.
type enc struct {
	buf []byte
}

func (e *enc) byte(b byte)      { e.buf = append(e.buf, b) }
func (e *enc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) u64(v uint64)     { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) f64(v float64)    { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *enc) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// dec reads primitive values, latching the first error.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) remaining() int { return len(d.buf) - d.off }

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated at offset %d", d.off)
	}
}

func (d *dec) byte() byte {
	if d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *dec) uvarint() uint64 {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *dec) u64() uint64 {
	if d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil || n > uint64(d.remaining()) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *dec) bytes() []byte {
	n := d.uvarint()
	if d.err != nil || n > uint64(d.remaining()) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}
