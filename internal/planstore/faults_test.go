package planstore

import (
	"errors"
	"testing"

	"repro/internal/faults"
)

// TestFailpoints: the planstore.load / planstore.save sites fail the
// store operations before any disk I/O, with the failures counted in
// store stats — the seam chaos runs degrade through.
func TestFailpoints(t *testing.T) {
	defer faults.Reset()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := mustCompile(t, storeReq(8))
	if _, err := s.Put(p); err != nil {
		t.Fatal(err)
	}

	faults.Set("planstore.load", faults.Point{Count: 1})
	if _, _, err := s.Load(p.Key); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Load under failpoint: %v", err)
	}
	if _, ok, err := s.Load(p.Key); err != nil || !ok {
		t.Fatalf("Load after failpoint exhausted: ok=%v err=%v", ok, err)
	}

	faults.Set("planstore.save", faults.Point{Count: 1})
	if err := s.Save(p); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Save under failpoint: %v", err)
	}
	if err := s.Save(p); err != nil {
		t.Fatalf("Save after failpoint exhausted: %v", err)
	}

	st := s.Stats()
	if st.LoadErrors != 1 || st.SaveErrors != 1 {
		t.Fatalf("stats after injected faults: %+v", st)
	}
}
