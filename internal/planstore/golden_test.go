package planstore

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/plan"
)

var updateGolden = flag.Bool("update", false, "regenerate the golden encoded plans under testdata/")

// goldenCases fixes one small shape per collective kind, with concrete
// (non-Auto) algorithms so the stored program does not shift when the
// performance model's selections improve.
func goldenCases() []plan.Request {
	return []plan.Request{
		{Kind: plan.Reduce1D, Alg: core.Chain, P: 5, B: 3, Op: fabric.OpSum},
		{Kind: plan.AllReduce1D, Alg: core.Tree, P: 6, B: 2, Op: fabric.OpSum},
		{Kind: plan.Broadcast1D, P: 4, B: 3},
		{Kind: plan.Reduce2D, Alg2D: core.XYChain, Width: 3, Height: 2, B: 2, Op: fabric.OpSum},
		{Kind: plan.AllReduce2D, Alg2D: core.XYTree, Width: 3, Height: 3, B: 2, Op: fabric.OpSum},
		{Kind: plan.Broadcast2D, Width: 3, Height: 2, B: 3},
		{Kind: plan.Scatter, P: 4, B: 6},
		{Kind: plan.Gather, P: 4, B: 6},
		{Kind: plan.ReduceScatter, P: 4, B: 8, Op: fabric.OpSum},
		{Kind: plan.AllGather, P: 4, B: 6},
		{Kind: plan.AllReduceMidRoot, Alg: core.Chain, P: 5, B: 3, Op: fabric.OpSum},
	}
}

func goldenPath(kind plan.Kind) string {
	return filepath.Join("testdata", string(kind)+blobExt)
}

// TestGoldenPlans is the forward-compatibility guard of the codec: one
// committed encoded plan per collective kind must keep decoding, keep its
// key derivation (or stored plans would silently miss after an upgrade),
// and keep producing correct collective results. Run with -update after a
// deliberate format-version bump to regenerate the files.
func TestGoldenPlans(t *testing.T) {
	for _, req := range goldenCases() {
		req := req
		t.Run(string(req.Kind), func(t *testing.T) {
			path := goldenPath(req.Kind)
			if *updateGolden {
				p, err := plan.Compile(req)
				if err != nil {
					t.Fatal(err)
				}
				data, _, err := Encode(p)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/planstore -run TestGoldenPlans -update` to generate)", err)
			}
			decoded, _, err := Decode(data)
			if err != nil {
				t.Fatalf("golden plan no longer decodes — bump FormatVersion and regenerate deliberately, do not ship silently: %v", err)
			}
			// The stored key must still be the key this build derives for
			// the same request, or lookups would miss every stored plan.
			if want := plan.KeyOf(req); decoded.Key != want {
				t.Fatalf("key derivation drifted:\n stored %v\n derived %v", decoded.Key, want)
			}
			// The decoded program must still execute and agree with a
			// fresh compile of the same concrete request on the result
			// contents (cycle counts may legitimately shift when engine
			// semantics are retuned; results may not).
			fresh, err := plan.Compile(req)
			if err != nil {
				t.Fatal(err)
			}
			inputs := inputsFor(decoded)
			got, err := decoded.Execute(inputs)
			if err != nil {
				t.Fatalf("golden plan no longer executes: %v", err)
			}
			want, err := fresh.Execute(inputs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Root, want.Root) || !reflect.DeepEqual(got.All, want.All) {
				t.Fatalf("golden plan results diverged:\n got %v\nwant %v", got.Root, want.Root)
			}
		})
	}
}
