package planstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/plan"
)

func mustCompile(t *testing.T, req plan.Request) *plan.Plan {
	t.Helper()
	p, err := plan.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func storeReq(p int) plan.Request {
	return plan.Request{Kind: plan.Reduce1D, Alg: core.Chain, P: p, B: 8, Op: fabric.OpSum}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := mustCompile(t, storeReq(8))
	hash, err := s.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	if again, err := s.Put(p); err != nil || again != hash {
		t.Fatalf("re-put: %s, %v; want %s, nil", again, err, hash)
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d plans, want 1", s.Len())
	}
	if h, ok := s.HashOf(p.Key); !ok || h != hash {
		t.Fatalf("HashOf = %s, %v", h, ok)
	}
	got, ok, err := s.Load(p.Key)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	inputs := inputsFor(p)
	want, err := p.Execute(inputs)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := got.Execute(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, rep) {
		t.Fatal("loaded plan replays differently")
	}
	// Unknown key: clean miss, no error.
	if _, ok, err := s.Load(plan.KeyOf(storeReq(16))); ok || err != nil {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
	// No temp droppings.
	ents, err := os.ReadDir(filepath.Join(s.Dir(), plansDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

// TestStoreSaveRestoresDeletedBlob guards Put's identical-content fast
// path: re-saving a plan whose blob was deleted out-of-band must rewrite
// the blob, not report stale success off the index.
func TestStoreSaveRestoresDeletedBlob(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := mustCompile(t, storeReq(8))
	hash, err := s.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, plansDir, hash+blobExt)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(p); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("blob not restored: %v", err)
	}
	if _, ok, err := s.Load(p.Key); !ok || err != nil {
		t.Fatalf("restored plan not loadable: ok=%v err=%v", ok, err)
	}
}

func TestStoreReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]plan.Key, 0, 3)
	for _, p := range []int{4, 8, 16} {
		pl := mustCompile(t, storeReq(p))
		if err := s.Save(pl); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, pl.Key)
	}
	// Delete the manifest: the blobs are the source of truth.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != len(keys) {
		t.Fatalf("reopened store holds %d plans, want %d", s2.Len(), len(keys))
	}
	for _, k := range keys {
		if _, ok, err := s2.Load(k); !ok || err != nil {
			t.Fatalf("key %v lost on reopen: ok=%v err=%v", k, ok, err)
		}
	}
	// The manifest is regenerated on open.
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("manifest not rewritten: %v", err)
	}
}

func TestStoreQuarantinesCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := mustCompile(t, storeReq(8))
	hash, err := s.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte on disk.
	path := filepath.Join(dir, plansDir, hash+blobExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok, err := s.Load(p.Key); ok || err == nil {
		t.Fatalf("corrupt blob served: ok=%v err=%v", ok, err)
	}
	// The blob moved to quarantine and left the index; a second load is a
	// clean miss so the cache falls back to compiling exactly once.
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, hash+blobExt)); err != nil {
		t.Fatalf("blob not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt blob still in plans/: %v", err)
	}
	if _, ok, err := s.Load(p.Key); ok || err != nil {
		t.Fatalf("post-quarantine load: ok=%v err=%v", ok, err)
	}
	if s.Len() != 0 {
		t.Fatalf("store still indexes %d plans", s.Len())
	}
	// Saving again heals the store.
	if err := s.Save(p); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load(p.Key); !ok || err != nil {
		t.Fatalf("store did not heal: ok=%v err=%v", ok, err)
	}
}

func TestStoreVerifySweep(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := mustCompile(t, storeReq(4))
	bad := mustCompile(t, storeReq(8))
	if err := s.Save(good); err != nil {
		t.Fatal(err)
	}
	badHash, err := s.Put(bad)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, plansDir, badHash+blobExt)
	data, _ := os.ReadFile(path)
	data[headerLen+3] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	ok, quarantined, err := s.Verify()
	if err == nil {
		t.Fatal("verify of a corrupt store reported no error")
	}
	if ok != 1 || len(quarantined) != 1 || quarantined[0] != badHash {
		t.Fatalf("verify: ok=%d quarantined=%v", ok, quarantined)
	}
}

func TestStoreKeyRemapDropsOldBlob(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := mustCompile(t, storeReq(8))
	oldHash, err := s.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	// Re-save different content under the same key (as a compiler change
	// across releases would): decode a copy and perturb a field outside
	// the key.
	data, _, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	p2.Predicted++
	newHash, err := s.Put(p2)
	if err != nil {
		t.Fatal(err)
	}
	if newHash == oldHash {
		t.Fatal("perturbed plan kept its address")
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d plans, want 1", s.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, plansDir, oldHash+blobExt)); !os.IsNotExist(err) {
		t.Fatalf("old blob not removed: %v", err)
	}
	got, ok, err := s.Load(p.Key)
	if !ok || err != nil {
		t.Fatalf("load after remap: ok=%v err=%v", ok, err)
	}
	if got.Predicted != p2.Predicted {
		t.Fatal("remapped key served stale content")
	}
}

// TestStoreStats exercises the operation accounting the serving daemon's
// /metrics endpoint reads: saves, loads, misses, and the load-error +
// quarantine counters on a corrupted blob.
func TestStoreStats(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := mustCompile(t, storeReq(8))
	hash, err := s.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load(p.Key); !ok || err != nil {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := s.Load(plan.KeyOf(storeReq(16))); ok {
		t.Fatal("missing key loaded")
	}
	st := s.Stats()
	if st.LoadLatency <= 0 || st.SaveLatency <= 0 {
		t.Fatalf("latency totals not accumulated: %+v", st)
	}
	st.LoadLatency, st.SaveLatency = 0, 0 // wall-clock, not comparable exactly
	want := Stats{Loads: 1, Misses: 1, Saves: 1, Plans: 1}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
	// Corrupt the blob: the failed load must count as a load error and a
	// quarantine, and the plan leaves the index.
	if err := os.WriteFile(s.blobPath(hash), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(p.Key); err == nil {
		t.Fatal("corrupt blob loaded without error")
	}
	st = s.Stats()
	st.LoadLatency, st.SaveLatency = 0, 0
	want = Stats{Loads: 1, Misses: 1, Saves: 1, LoadErrors: 1, Quarantined: 1, Plans: 0}
	if st != want {
		t.Fatalf("stats after corruption = %+v, want %+v", st, want)
	}
}

// TestStoreLoadBlob covers the raw-frame serving path: the returned
// bytes are the exact stored frame (what Encode produced), misses are
// clean, and a corrupt blob quarantines instead of being served.
func TestStoreLoadBlob(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := mustCompile(t, storeReq(8))
	hash, err := s.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	blob, ok, err := s.LoadBlob(p.Key)
	if err != nil || !ok {
		t.Fatalf("LoadBlob: ok=%v err=%v", ok, err)
	}
	want, wantHash, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if wantHash != hash || !bytes.Equal(blob, want) {
		t.Fatal("LoadBlob bytes differ from the deterministic encoding")
	}
	// The frame decodes on the consumer side to the same plan.
	got, _, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != p.Key {
		t.Fatalf("decoded key %v, want %v", got.Key, p.Key)
	}

	if _, ok, err := s.LoadBlob(plan.KeyOf(storeReq(16))); ok || err != nil {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}

	// Flip a payload byte: LoadBlob must refuse and quarantine.
	path := filepath.Join(dir, plansDir, hash+blobExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.LoadBlob(p.Key); ok || err == nil {
		t.Fatalf("corrupt blob served: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, hash+blobExt)); err != nil {
		t.Errorf("corrupt blob not quarantined: %v", err)
	}
}
