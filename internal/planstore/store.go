package planstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/plan"
)

// Store layout inside its directory:
//
//	plans/<sha256 hex>.plan   encoded plans, named by content address
//	quarantine/               blobs that failed integrity checks on load
//	index.tsv                 manifest: "<hash>\t<key string>" per line
//
// The blobs are the source of truth: Open rebuilds the in-memory index by
// reading each blob's key prefix (DecodeKey), so a lost or stale manifest
// never loses plans. The manifest is rewritten after every mutation — it
// gives humans and tooling a greppable inventory and records the pinned
// key encoding the store is addressed by.
const (
	plansDir      = "plans"
	quarantineDir = "quarantine"
	manifestName  = "index.tsv"
	blobExt       = ".plan"
)

// Store is a content-addressed collection of encoded plans in a
// directory. All methods are safe for concurrent use; writes are atomic
// (temp file + rename), loads verify the content hash before trusting a
// byte, and corrupt entries are quarantined rather than served or
// silently deleted.
type Store struct {
	dir string

	mu    sync.Mutex
	index map[plan.Key]string // key -> content hash (blob basename)
	stats Stats
}

// Stats is the store's operation accounting, for dashboards and the
// serving daemon's /metrics endpoint. Loads counts successful decodes,
// Misses the lookups for keys the store does not hold, LoadErrors the
// entries that existed but could not be used (each of those also bumps
// Quarantined when the blob was moved aside), Saves the persisted writes
// and SaveErrors the writes that failed. Plans is the indexed plan count
// at snapshot time.
type Stats struct {
	Loads       int64
	Misses      int64
	LoadErrors  int64
	Saves       int64
	SaveErrors  int64
	Quarantined int64
	Plans       int
	// LoadLatency and SaveLatency accumulate wall time across every Load
	// (including misses and failures) and Save/Put respectively — the
	// totals behind /metrics' wse_plan_store_{load,save}_seconds_total,
	// which divided by the operation counters give mean store latency.
	LoadLatency time.Duration
	SaveLatency time.Duration
}

// Stats snapshots the store's operation accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Plans = len(s.index)
	return st
}

func (s *Store) note(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Open opens (creating if needed) a plan store rooted at dir and rebuilds
// its index from the blobs on disk. Blobs that cannot be indexed —
// unreadable, foreign format, future version — are quarantined.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, plansDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("planstore: %w", err)
		}
	}
	s := &Store{dir: dir, index: make(map[plan.Key]string)}
	entries, err := os.ReadDir(filepath.Join(dir, plansDir))
	if err != nil {
		return nil, fmt.Errorf("planstore: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, blobExt) {
			continue
		}
		path := filepath.Join(dir, plansDir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue // unreadable now; Load will quarantine it if asked for
		}
		key, err := DecodeKey(data)
		if err != nil {
			s.quarantine(name)
			continue
		}
		s.index[key] = strings.TrimSuffix(name, blobExt)
	}
	if err := s.writeManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of indexed plans.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Keys lists the keys of every stored plan, in no particular order.
func (s *Store) Keys() []plan.Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]plan.Key, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	return out
}

// HashOf returns the content address the store holds for key.
func (s *Store) HashOf(key plan.Key) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.index[key]
	return h, ok
}

// Save encodes and persists a plan, overwriting any entry under the same
// key. The blob write is atomic: the encoding goes to a temp file in the
// store and is renamed onto its content address, so a crash mid-write
// leaves either the old state or the new, never a torn blob.
func (s *Store) Save(p *plan.Plan) error {
	_, err := s.Put(p)
	return err
}

// Put is Save returning the plan's content address.
func (s *Store) Put(p *plan.Plan) (string, error) {
	start := time.Now()
	defer func() {
		s.note(func(st *Stats) { st.SaveLatency += time.Since(start) })
	}()
	if err := faults.Inject("planstore.save"); err != nil {
		s.note(func(st *Stats) { st.SaveErrors++ })
		return "", err
	}
	data, hash, err := Encode(p)
	if err != nil {
		s.note(func(st *Stats) { st.SaveErrors++ })
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old, existed := s.index[p.Key]
	if existed && old == hash {
		// Identical content already indexed — but only skip the write if
		// the blob really is on disk, so a Save after an out-of-band
		// deletion restores durability instead of reporting stale success.
		if _, err := os.Stat(s.blobPath(hash)); err == nil {
			return hash, nil
		}
	}
	if err := s.writeBlob(hash, data); err != nil {
		s.stats.SaveErrors++
		return "", err
	}
	s.stats.Saves++
	s.index[p.Key] = hash
	if existed && old != hash {
		// The key moved to new content (e.g. the compiler changed between
		// releases); drop the orphaned old blob.
		os.Remove(s.blobPath(old))
	}
	return hash, s.writeManifest()
}

// Load reads, verifies and decodes the plan stored under key. A missing
// entry returns ok=false with no error. An entry that fails integrity
// verification or decoding is moved to the quarantine directory, removed
// from the index, and reported as an error — the caller falls back to
// compiling, and the operator can inspect the quarantined blob.
func (s *Store) Load(key plan.Key) (*plan.Plan, bool, error) {
	start := time.Now()
	defer func() {
		s.note(func(st *Stats) { st.LoadLatency += time.Since(start) })
	}()
	if err := faults.Inject("planstore.load"); err != nil {
		s.note(func(st *Stats) { st.LoadErrors++ })
		return nil, false, err
	}
	s.mu.Lock()
	hash, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false, nil
	}
	s.mu.Unlock()
	data, err := os.ReadFile(s.blobPath(hash))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// Blob vanished under us (manual deletion); drop the entry.
			s.drop(key, hash)
			s.note(func(st *Stats) { st.Misses++ })
			return nil, false, nil
		}
		s.note(func(st *Stats) { st.LoadErrors++ })
		return nil, false, fmt.Errorf("planstore: %w", err)
	}
	p, gotHash, err := Decode(data)
	if err != nil {
		s.quarantineEntry(key, hash)
		return nil, false, fmt.Errorf("planstore: %s quarantined: %w", hash+blobExt, err)
	}
	if gotHash != hash {
		// The payload verifies against its own header but lives under the
		// wrong address — a swapped or misfiled blob.
		s.quarantineEntry(key, hash)
		return nil, false, fmt.Errorf("planstore: blob %s decodes to address %s: quarantined", hash, gotHash)
	}
	if p.Key != key {
		s.quarantineEntry(key, hash)
		return nil, false, fmt.Errorf("planstore: blob %s holds key %v, indexed under %v: quarantined", hash, p.Key, key)
	}
	s.note(func(st *Stats) { st.Loads++ })
	return p, true, nil
}

// LoadBlob returns the raw encoded frame for key — header, content hash
// and key identity verified, but never decoded. This is what the fleet
// blob endpoint serves: the requesting peer pays the one decode, so a
// blob served N times costs N disk reads and hash checks rather than N
// full decode + re-encode round trips. Corrupt blobs quarantine exactly
// as on the Load path.
func (s *Store) LoadBlob(key plan.Key) ([]byte, bool, error) {
	if err := faults.Inject("planstore.load"); err != nil {
		s.note(func(st *Stats) { st.LoadErrors++ })
		return nil, false, err
	}
	s.mu.Lock()
	hash, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false, nil
	}
	s.mu.Unlock()
	data, err := os.ReadFile(s.blobPath(hash))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			s.drop(key, hash)
			s.note(func(st *Stats) { st.Misses++ })
			return nil, false, nil
		}
		s.note(func(st *Stats) { st.LoadErrors++ })
		return nil, false, fmt.Errorf("planstore: %w", err)
	}
	gotKey, err := DecodeKey(data)
	if err != nil {
		s.quarantineEntry(key, hash)
		return nil, false, fmt.Errorf("planstore: %s quarantined: %w", hash+blobExt, err)
	}
	if gotKey != key {
		s.quarantineEntry(key, hash)
		return nil, false, fmt.Errorf("planstore: blob %s holds key %v, indexed under %v: quarantined", hash, gotKey, key)
	}
	s.note(func(st *Stats) { st.Loads++ })
	return data, true, nil
}

// Verify loads and checks every indexed plan, quarantining the ones that
// fail. It returns the number of healthy plans and the content addresses
// that were quarantined.
func (s *Store) Verify() (ok int, quarantined []string, err error) {
	var errs []error
	for _, key := range s.Keys() {
		s.mu.Lock()
		hash, present := s.index[key]
		s.mu.Unlock()
		if !present {
			continue
		}
		if _, loaded, lerr := s.Load(key); lerr != nil {
			quarantined = append(quarantined, hash)
			errs = append(errs, lerr)
		} else if loaded {
			ok++
		}
	}
	return ok, quarantined, errors.Join(errs...)
}

func (s *Store) blobPath(hash string) string {
	return filepath.Join(s.dir, plansDir, hash+blobExt)
}

// writeBlob writes data to the blob for hash via temp file + rename.
// The caller holds s.mu.
func (s *Store) writeBlob(hash string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Join(s.dir, plansDir), ".tmp-*")
	if err != nil {
		return fmt.Errorf("planstore: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("planstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("planstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.blobPath(hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("planstore: %w", err)
	}
	return nil
}

// drop removes an index entry whose blob is gone.
func (s *Store) drop(key plan.Key, hash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.index[key] == hash {
		delete(s.index, key)
		s.writeManifest()
	}
}

// quarantineEntry moves a failing blob into quarantine/ and drops its
// index entry.
func (s *Store) quarantineEntry(key plan.Key, hash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.LoadErrors++
	s.quarantine(hash + blobExt)
	if s.index[key] == hash {
		delete(s.index, key)
		s.writeManifest()
	}
}

// quarantine moves plans/<name> to quarantine/<name>. The caller holds
// s.mu (or, during Open, has exclusive access).
func (s *Store) quarantine(name string) {
	s.stats.Quarantined++
	os.Rename(filepath.Join(s.dir, plansDir, name), filepath.Join(s.dir, quarantineDir, name))
}

// writeManifest rewrites index.tsv atomically, sorted by key string so
// the manifest is diff-stable. The caller holds s.mu (or, during Open,
// has exclusive access).
func (s *Store) writeManifest() error {
	lines := make([]string, 0, len(s.index))
	for k, h := range s.index {
		lines = append(lines, h+"\t"+k.String()+"\n")
	}
	sort.Slice(lines, func(i, j int) bool {
		return lines[i][strings.IndexByte(lines[i], '\t'):] < lines[j][strings.IndexByte(lines[j], '\t'):]
	})
	tmp, err := os.CreateTemp(s.dir, ".tmp-manifest-*")
	if err != nil {
		return fmt.Errorf("planstore: %w", err)
	}
	for _, l := range lines {
		if _, err := tmp.WriteString(l); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("planstore: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("planstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, manifestName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("planstore: %w", err)
	}
	return nil
}
