package planstore

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/plan"
)

// noisyOpt exercises the RNG chain: clock skew and thermal no-ops both
// draw from the seeded per-PE RNG, so a decoded plan only replays
// bit-identically if the codec preserves every option exactly.
var noisyOpt = fabric.Options{ClockSkewMax: 3, ThermalNoopRate: 0.01, Seed: 7}

// kindRequests returns one request per collective kind, parameterised by
// the fabric options.
func kindRequests(opt fabric.Options) []plan.Request {
	return []plan.Request{
		{Kind: plan.Reduce1D, Alg: core.AutoGen, P: 12, B: 9, Op: fabric.OpSum, Opt: opt},
		{Kind: plan.AllReduce1D, Alg: core.Ring, P: 8, B: 16, Op: fabric.OpSum, Opt: opt},
		{Kind: plan.Broadcast1D, P: 9, B: 7, Opt: opt},
		{Kind: plan.Reduce2D, Alg2D: core.Snake, Width: 4, Height: 3, B: 6, Op: fabric.OpMax, Opt: opt},
		{Kind: plan.AllReduce2D, Alg2D: core.Auto2D, Width: 3, Height: 4, B: 5, Op: fabric.OpSum, Opt: opt},
		{Kind: plan.Broadcast2D, Width: 5, Height: 2, B: 4, Opt: opt},
		{Kind: plan.Scatter, P: 6, B: 14, Opt: opt},
		{Kind: plan.Gather, P: 5, B: 11, Opt: opt},
		{Kind: plan.ReduceScatter, P: 6, B: 13, Op: fabric.OpSum, Opt: opt},
		{Kind: plan.AllGather, P: 4, B: 10, Opt: opt},
		{Kind: plan.AllReduceMidRoot, Alg: core.Tree, P: 9, B: 8, Op: fabric.OpMin, Opt: opt},
	}
}

// inputsFor builds deterministic inputs of the right arity for a plan.
func inputsFor(p *plan.Plan) [][]float32 {
	vec := func(n int, seed float32) []float32 {
		v := make([]float32, n)
		for j := range v {
			v[j] = seed + float32(j%5) + 0.25
		}
		return v
	}
	switch p.Kind {
	case plan.Broadcast1D, plan.Broadcast2D, plan.Scatter:
		return [][]float32{vec(p.B, 1)}
	case plan.Gather, plan.AllGather:
		off, sz := core.Chunks(p.P, p.B)
		full := vec(p.B, 2)
		out := make([][]float32, p.P)
		for j := range out {
			out[j] = full[off[j] : off[j]+sz[j]]
		}
		return out
	case plan.Reduce2D, plan.AllReduce2D:
		out := make([][]float32, p.Width*p.Height)
		for i := range out {
			out[i] = vec(p.B, float32(i))
		}
		return out
	default:
		out := make([][]float32, p.P)
		for i := range out {
			out[i] = vec(p.B, float32(i))
		}
		return out
	}
}

// TestRoundTripAllKinds is the round-trip property of the ISSUE's
// acceptance criteria: for every collective kind, Decode(Encode(plan))
// replays bit-identically to the freshly compiled plan — same per-PE
// results, same cycle counts, same RNG-driven noise — and the encoding
// itself is deterministic and a fixed point under decode→encode.
func TestRoundTripAllKinds(t *testing.T) {
	for _, req := range kindRequests(noisyOpt) {
		req := req
		t.Run(string(req.Kind), func(t *testing.T) {
			compiled, err := plan.Compile(req)
			if err != nil {
				t.Fatal(err)
			}
			data, hash, err := Encode(compiled)
			if err != nil {
				t.Fatal(err)
			}
			data2, hash2, err := Encode(compiled)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, data2) || hash != hash2 {
				t.Fatal("encoding the same plan twice differs")
			}
			decoded, gotHash, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if gotHash != hash {
				t.Fatalf("decode reports hash %s, encode said %s", gotHash, hash)
			}
			if decoded.Key != compiled.Key {
				t.Fatalf("key changed in flight:\n got %v\nwant %v", decoded.Key, compiled.Key)
			}
			if key, err := DecodeKey(data); err != nil || key != compiled.Key {
				t.Fatalf("DecodeKey = %v, %v; want %v", key, err, compiled.Key)
			}
			// Decode→encode is byte-identical: the canonical form is a
			// fixed point, so re-saving a loaded plan never rewrites it.
			redata, rehash, err := Encode(decoded)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, redata) || rehash != hash {
				t.Fatal("decode→encode is not byte-identical")
			}

			inputs := inputsFor(compiled)
			for rep := 0; rep < 2; rep++ { // replay twice: pooled path too
				want, err := compiled.Execute(inputs)
				if err != nil {
					t.Fatal(err)
				}
				got, err := decoded.Execute(inputs)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("replay %d of decoded plan differs:\n got %+v\nwant %+v", rep, got, want)
				}
			}
		})
	}
}

// TestTamperedBlobRejected flips single bytes across the blob — magic,
// version, digest, payload — and checks every mutation is rejected, along
// with truncations and trailing garbage.
func TestTamperedBlobRejected(t *testing.T) {
	compiled, err := plan.Compile(kindRequests(fabric.Options{})[0])
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := Encode(compiled)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(data); err != nil {
		t.Fatal(err)
	}
	// A spread of offsets: every header byte, then strides through the
	// payload.
	var offsets []int
	for i := 0; i < headerLen; i++ {
		offsets = append(offsets, i)
	}
	for i := headerLen; i < len(data); i += 1 + len(data)/97 {
		offsets = append(offsets, i)
	}
	for _, off := range offsets {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if _, _, err := Decode(bad); err == nil {
			t.Fatalf("flipped bit at offset %d accepted", off)
		}
	}
	for _, n := range []int{0, 1, headerLen - 1, headerLen, len(data) / 2, len(data) - 1} {
		if _, _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, _, err := Decode(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestContentAddressIsShapeSensitive spot-checks that distinct plans get
// distinct addresses while identical logical plans (compiled separately)
// share one — the property the store's deduplication rests on.
func TestContentAddressIsShapeSensitive(t *testing.T) {
	req := plan.Request{Kind: plan.Reduce1D, Alg: core.Chain, P: 8, B: 16, Op: fabric.OpSum}
	a, err := plan.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plan.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	_, ha, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	_, hb, err := Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("two compiles of one request hash differently: %s vs %s", ha, hb)
	}
	seen := map[string]plan.Kind{ha: req.Kind}
	for _, mreq := range kindRequests(fabric.Options{}) {
		mp, err := plan.Compile(mreq)
		if err != nil {
			t.Fatal(err)
		}
		_, h, err := Encode(mp)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("%s and %s share address %s", mreq.Kind, prev, h)
		}
		seen[h] = mreq.Kind
	}
}
